//! Durability wiring between the sink service and `domo-store`.
//!
//! `domo-store` speaks opaque bytes; this module owns the *meaning* of
//! every persisted record:
//!
//! * **WAL payloads** are exactly the ingest wire frames
//!   ([`crate::wire::encode_packet`]) — the journal replays through the
//!   same decoder the TCP path uses, so a WAL bug cannot diverge from a
//!   network bug.
//! * **Checkpoint payloads** serialize the mutable service state: every
//!   shard's [`StreamingSnapshot`], the service counters, the set of
//!   packet ids durably journaled below the checkpoint's WAL cut, and
//!   the per-node sojourn accumulators.
//! * **Result records** serialize one emitted reconstruction, keyed in
//!   the result store's time index by the packet's generation time
//!   (`hop_times_ms[0]`).
//!
//! The recovery invariants these formats uphold are documented in
//! DESIGN.md §13.

use crate::service::StoredReconstruction;
use crate::wire::{self, WireError};
use domo_core::streaming::StreamingSnapshot;
use domo_net::{NodeId, PacketId};
use domo_query::series::{AggParts, NodeSeriesParts};
use domo_query::SketchParts;
use domo_store::FsyncPolicy;
use std::collections::HashMap;
use std::path::PathBuf;

/// What the sink does when the durable store fails at runtime (a WAL
/// append, a checkpoint, a result append — anything past `open`).
///
/// The operator spelling (`--on-store-error`) round-trips through
/// [`StoreErrorPolicy::parse`] / `Display`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreErrorPolicy {
    /// Stop the service: health goes `failed` and the `serve` binary
    /// exits nonzero. For deployments where silent durability loss is
    /// worse than downtime.
    Fail,
    /// Suspend durability but keep reconstructing (the default): health
    /// goes `degraded`, accepted records continue un-journaled (and are
    /// counted), emitted results are backlogged in memory, and every
    /// [`StoreConfig::probe_every`] ingests the sink re-probes the
    /// store with a full checkpoint — success flushes the backlog and
    /// re-arms durability.
    #[default]
    Degrade,
    /// Give up on durability for the rest of the process: like
    /// `Degrade` but permanent — no heal probes, no backlog.
    DropDurability,
}

impl StoreErrorPolicy {
    /// Parses the operator spelling: `fail`, `degrade`, or
    /// `drop-durability`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the accepted forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fail" => Ok(Self::Fail),
            "degrade" => Ok(Self::Degrade),
            "drop-durability" => Ok(Self::DropDurability),
            other => Err(format!(
                "unknown store-error policy {other:?} (use fail | degrade | drop-durability)"
            )),
        }
    }
}

impl std::fmt::Display for StoreErrorPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail => write!(f, "fail"),
            Self::Degrade => write!(f, "degrade"),
            Self::DropDurability => write!(f, "drop-durability"),
        }
    }
}

/// Operator-facing durability configuration of a [`crate::SinkService`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Directory holding the WAL (`wal/`), checkpoints (`ckpt/`) and
    /// result log (`results/`).
    pub data_dir: PathBuf,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL appends (clamped to ≥ 1).
    pub checkpoint_every: u64,
    /// Result-log retention: sealed segments beyond this many are
    /// deleted, oldest first (0 = unlimited).
    pub max_result_segments: usize,
    /// What a runtime store failure does to the service.
    pub on_error: StoreErrorPolicy,
    /// While degraded, attempt a heal (a full checkpoint through the
    /// failing store) every this many accepted records (clamped ≥ 1).
    pub probe_every: u64,
    /// Deterministic I/O fault injection (chaos testing only): when
    /// set, every filesystem operation of the WAL, checkpoint store and
    /// result log goes through a seeded [`domo_store::FaultPlan`].
    pub faults: Option<domo_store::FaultPlan>,
}

impl StoreConfig {
    /// A configuration rooted at `data_dir` with the default policy:
    /// `fsync interval:64`, checkpoint every 4096 appends, unlimited
    /// result retention, degrade on store errors (heal probe every 256
    /// records), no fault injection.
    pub fn at<P: Into<PathBuf>>(data_dir: P) -> Self {
        Self {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Interval(64),
            checkpoint_every: 4096,
            max_result_segments: 0,
            on_error: StoreErrorPolicy::Degrade,
            probe_every: 256,
            faults: None,
        }
    }
}

/// Exact accounting of one recovery pass ([`crate::SinkService::open`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// WAL cut of the checkpoint that seeded the state (0 if none).
    pub checkpoint_lsn: u64,
    /// Valid WAL records found on disk.
    pub wal_records: u64,
    /// WAL records past the checkpoint replayed through the shards.
    pub replayed: u64,
    /// Bytes truncated from torn/corrupt WAL tails.
    pub wal_bytes_discarded: u64,
    /// Whole WAL segments discarded as unrecoverable.
    pub wal_segments_discarded: usize,
    /// Reconstructions recovered from the result log.
    pub result_records: u64,
    /// Bytes truncated from torn result-log tails.
    pub result_bytes_discarded: u64,
    /// Checkpoints skipped because their checksum failed.
    pub checkpoints_skipped: u64,
}

/// Everything a checkpoint captures. Field-for-field what
/// [`encode_checkpoint`]/[`decode_checkpoint`] round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// One snapshot per shard, in shard order.
    pub shards: Vec<StreamingSnapshot>,
    /// Service counters at the cut: ingested, emitted, quarantined,
    /// malformed_frames, backpressure_dropped, estimator_errors,
    /// watchdog_dropped.
    pub counters: [u64; 7],
    /// Ids of every packet journaled with `lsn <` the cut. Restores the
    /// dedup set for history the WAL has compacted away.
    pub seen: Vec<PacketId>,
    /// Per-node sojourn accumulators as
    /// [`domo_util::running::RunningStats::to_parts`] tuples.
    pub node_stats: Vec<(NodeId, domo_util::running::RunningParts)>,
    /// The aggregation-sketch store behind `AGG` queries
    /// ([`domo_query::AggStore::to_parts`]); restores bit-identically.
    pub agg: AggParts,
}

/// A persisted format failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The buffer ended before the field at `at`.
    Truncated {
        /// Byte offset of the truncated field.
        at: usize,
    },
    /// A version/count field held an impossible value.
    Invalid(&'static str),
    /// An embedded wire frame failed to decode.
    Wire(WireError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { at } => write!(f, "persisted record truncated at byte {at}"),
            Self::Invalid(what) => write!(f, "persisted record invalid: {what}"),
            Self::Wire(e) => write!(f, "embedded wire frame: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

// v2 added the watchdog_dropped counter (6 → 7 counter slots); v3
// appended the AGG sketch store. An old-version checkpoint fails decode
// and is skipped like a corrupt one: recovery falls back to full WAL
// replay, losing no data (sketches rebuild from replay + backfill).
const CHECKPOINT_VERSION: u32 = 3;

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(PersistError::Truncated { at: self.at })?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, PersistError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn i32(&mut self) -> Result<i32, PersistError> {
        Ok(self.u32()? as i32)
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(self.u64()? as i64)
    }
}

fn put_sketch(out: &mut Vec<u8>, s: &SketchParts) {
    out.extend_from_slice(&s.count.to_le_bytes());
    out.extend_from_slice(&s.zeros.to_le_bytes());
    for v in [s.sum, s.min, s.max] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(s.buckets.len() as u32).to_le_bytes());
    for &(idx, n) in &s.buckets {
        out.extend_from_slice(&idx.to_le_bytes());
        out.extend_from_slice(&n.to_le_bytes());
    }
}

fn get_sketch(c: &mut Cursor<'_>) -> Result<SketchParts, PersistError> {
    let count = c.u64()?;
    let zeros = c.u64()?;
    let sum = c.f64()?;
    let min = c.f64()?;
    let max = c.f64()?;
    let bucket_count = c.u32()? as usize;
    if bucket_count > 1 << 24 {
        return Err(PersistError::Invalid("absurd sketch bucket count"));
    }
    let mut buckets = Vec::with_capacity(bucket_count.min(1 << 16));
    for _ in 0..bucket_count {
        let idx = c.i32()?;
        let n = c.u64()?;
        buckets.push((idx, n));
    }
    Ok(SketchParts {
        count,
        zeros,
        sum,
        min,
        max,
        buckets,
    })
}

fn put_agg(out: &mut Vec<u8>, agg: &AggParts) {
    out.extend_from_slice(&agg.granularity_ms.to_le_bytes());
    out.extend_from_slice(&(agg.nodes.len() as u32).to_le_bytes());
    for node in &agg.nodes {
        out.extend_from_slice(&node.node.to_le_bytes());
        match node.pruned_through {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(node.buckets.len() as u32).to_le_bytes());
        for (key, sketch) in &node.buckets {
            out.extend_from_slice(&key.to_le_bytes());
            put_sketch(out, sketch);
        }
    }
}

fn get_agg(c: &mut Cursor<'_>) -> Result<AggParts, PersistError> {
    let granularity_ms = c.u64()?;
    let node_count = c.u32()? as usize;
    if node_count > 1 << 20 {
        return Err(PersistError::Invalid("absurd agg node count"));
    }
    let mut nodes = Vec::with_capacity(node_count.min(1 << 16));
    for _ in 0..node_count {
        let node = c.u16()?;
        let pruned_through = match c.take(1)?[0] {
            0 => None,
            1 => Some(c.i64()?),
            _ => return Err(PersistError::Invalid("bad pruned-through flag")),
        };
        let bucket_count = c.u32()? as usize;
        if bucket_count > 1 << 24 {
            return Err(PersistError::Invalid("absurd agg bucket count"));
        }
        let mut buckets = Vec::with_capacity(bucket_count.min(1 << 16));
        for _ in 0..bucket_count {
            let key = c.i64()?;
            buckets.push((key, get_sketch(c)?));
        }
        nodes.push(NodeSeriesParts {
            node,
            pruned_through,
            buckets,
        });
    }
    Ok(AggParts {
        granularity_ms,
        nodes,
    })
}

fn put_pid(out: &mut Vec<u8>, pid: PacketId) {
    out.extend_from_slice(&(pid.origin.index() as u16).to_le_bytes());
    out.extend_from_slice(&pid.seq.to_le_bytes());
}

fn get_pid(c: &mut Cursor<'_>) -> Result<PacketId, PersistError> {
    let origin = c.u16()?;
    let seq = c.u32()?;
    Ok(PacketId::new(NodeId::new(origin), seq))
}

/// Serializes a [`CheckpointState`] (the payload handed to
/// `domo_store::CheckpointStore::save`, which adds magic + checksum).
///
/// # Errors
///
/// [`PersistError::Wire`] if a buffered packet exceeds the wire format's
/// limits (it was ingested through that format, so this cannot happen
/// for real traffic).
pub fn encode_checkpoint(state: &CheckpointState) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(state.shards.len() as u32).to_le_bytes());
    for s in &state.shards {
        out.extend_from_slice(&(s.high_water as u64).to_le_bytes());
        out.extend_from_slice(&s.emitted.to_le_bytes());
        out.extend_from_slice(&s.overflow_dropped.to_le_bytes());
        out.extend_from_slice(&(s.buffer.len() as u32).to_le_bytes());
        for p in &s.buffer {
            wire::encode_packet(p, &mut out)?;
        }
    }
    for c in state.counters {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(&(state.seen.len() as u32).to_le_bytes());
    for &pid in &state.seen {
        put_pid(&mut out, pid);
    }
    out.extend_from_slice(&(state.node_stats.len() as u32).to_le_bytes());
    for &(node, (count, mean, m2, min, max)) in &state.node_stats {
        out.extend_from_slice(&(node.index() as u16).to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        for v in [mean, m2, min, max] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    put_agg(&mut out, &state.agg);
    Ok(out)
}

/// Deserializes [`encode_checkpoint`] output.
///
/// # Errors
///
/// [`PersistError`] on truncation, an unknown version, or a corrupt
/// embedded frame. The caller treats any error as "no usable
/// checkpoint" and falls back to WAL-only recovery.
pub fn decode_checkpoint(buf: &[u8]) -> Result<CheckpointState, PersistError> {
    let mut c = Cursor { buf, at: 0 };
    let version = c.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(PersistError::Invalid("unknown checkpoint version"));
    }
    let shard_count = c.u32()? as usize;
    if shard_count > 1 << 16 {
        return Err(PersistError::Invalid("absurd shard count"));
    }
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let high_water = c.u64()? as usize;
        let emitted = c.u64()?;
        let overflow_dropped = c.u64()?;
        let buffered = c.u32()? as usize;
        let mut buffer = Vec::with_capacity(buffered.min(1 << 20));
        for _ in 0..buffered {
            let (p, used) = wire::decode_packet(&buf[c.at..])?;
            c.at += used;
            buffer.push(p);
        }
        shards.push(StreamingSnapshot {
            buffer,
            high_water,
            emitted,
            overflow_dropped,
        });
    }
    let mut counters = [0u64; 7];
    for slot in &mut counters {
        *slot = c.u64()?;
    }
    let seen_count = c.u32()? as usize;
    let mut seen = Vec::with_capacity(seen_count.min(1 << 24));
    for _ in 0..seen_count {
        seen.push(get_pid(&mut c)?);
    }
    let node_count = c.u32()? as usize;
    let mut node_stats = Vec::with_capacity(node_count.min(1 << 20));
    for _ in 0..node_count {
        let node = NodeId::new(c.u16()?);
        let count = c.u64()?;
        let mean = c.f64()?;
        let m2 = c.f64()?;
        let min = c.f64()?;
        let max = c.f64()?;
        node_stats.push((node, (count, mean, m2, min, max)));
    }
    let agg = get_agg(&mut c)?;
    if c.at != buf.len() {
        return Err(PersistError::Invalid("trailing bytes after checkpoint"));
    }
    Ok(CheckpointState {
        shards,
        counters,
        seen,
        node_stats,
        agg,
    })
}

/// Serializes one emitted reconstruction as a result-store payload. The
/// store's time key is the packet's generation time,
/// `hop_times_ms[0]`.
pub fn encode_result(pid: PacketId, rec: &StoredReconstruction) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + rec.path.len() * 2 + rec.hop_times_ms.len() * 8);
    put_pid(&mut out, pid);
    out.extend_from_slice(&(rec.path.len() as u32).to_le_bytes());
    for n in &rec.path {
        out.extend_from_slice(&(n.index() as u16).to_le_bytes());
    }
    for &t in &rec.hop_times_ms {
        out.extend_from_slice(&t.to_bits().to_le_bytes());
    }
    out
}

/// Deserializes [`encode_result`] output.
///
/// # Errors
///
/// [`PersistError`] on truncation or an impossible path length.
pub fn decode_result(buf: &[u8]) -> Result<(PacketId, StoredReconstruction), PersistError> {
    let mut c = Cursor { buf, at: 0 };
    let pid = get_pid(&mut c)?;
    let path_len = c.u32()? as usize;
    if path_len > wire::MAX_PATH_NODES {
        return Err(PersistError::Invalid("result path too long"));
    }
    let mut path = Vec::with_capacity(path_len);
    for _ in 0..path_len {
        path.push(NodeId::new(c.u16()?));
    }
    let mut hop_times_ms = Vec::with_capacity(path_len);
    for _ in 0..path_len {
        hop_times_ms.push(c.f64()?);
    }
    if c.at != buf.len() {
        return Err(PersistError::Invalid("trailing bytes after result"));
    }
    Ok((pid, StoredReconstruction { path, hop_times_ms }))
}

/// Convenience: rebuilds a `NodeId → RunningStats` map from checkpoint
/// tuples.
pub(crate) fn node_stats_from_parts(
    parts: &[(NodeId, domo_util::running::RunningParts)],
) -> HashMap<NodeId, domo_util::running::RunningStats> {
    parts
        .iter()
        .map(|&(node, (count, mean, m2, min, max))| {
            (
                node,
                domo_util::running::RunningStats::from_parts(count, mean, m2, min, max),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use domo_net::{run_simulation, NetworkConfig};

    #[test]
    fn checkpoint_state_round_trips_exactly() {
        let trace = run_simulation(&NetworkConfig::small(9, 501));
        let state = CheckpointState {
            shards: vec![
                StreamingSnapshot {
                    buffer: trace.packets.iter().take(5).cloned().collect(),
                    high_water: 32,
                    emitted: 17,
                    overflow_dropped: 0,
                },
                StreamingSnapshot {
                    buffer: Vec::new(),
                    high_water: 32,
                    emitted: 0,
                    overflow_dropped: 3,
                },
            ],
            counters: [10, 9, 1, 0, 2, 0, 1],
            seen: trace.packets.iter().take(10).map(|p| p.pid).collect(),
            node_stats: vec![
                (NodeId::new(3), (4, 2.5, 1.25, 0.5, 4.0)),
                (
                    NodeId::new(7),
                    (0, 0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY),
                ),
            ],
            agg: {
                let mut agg = domo_query::AggStore::new(domo_query::AggConfig {
                    granularity_ms: 100,
                    retention_buckets: 2,
                });
                for i in 0..8 {
                    agg.record(3, i as f64 * 70.0, 0.3 * i as f64);
                    agg.record(7, i as f64 * 45.0, 1.0 / (i + 1) as f64);
                }
                agg.record(9, -0.5, 0.0); // negative-time + zeros bucket
                agg.to_parts()
            },
        };
        let bytes = encode_checkpoint(&state).unwrap();
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, state);
        // Any truncation fails loudly instead of misparsing.
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage fails too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_checkpoint(&padded).is_err());
    }

    #[test]
    fn result_records_round_trip_bit_exactly() {
        let pid = PacketId::new(NodeId::new(12), 99);
        let rec = StoredReconstruction {
            path: vec![NodeId::new(12), NodeId::new(4), NodeId::new(0)],
            hop_times_ms: vec![1.25, 6.5000001, 11.75],
        };
        let bytes = encode_result(pid, &rec);
        let (pid2, rec2) = decode_result(&bytes).unwrap();
        assert_eq!(pid2, pid);
        assert_eq!(rec2.path, rec.path);
        for (a, b) in rec.hop_times_ms.iter().zip(&rec2.hop_times_ms) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for cut in 0..bytes.len() {
            assert!(decode_result(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn store_config_parses_the_operator_surface() {
        let cfg = StoreConfig::at("/tmp/x");
        assert_eq!(cfg.fsync, FsyncPolicy::Interval(64));
        assert_eq!(cfg.checkpoint_every, 4096);
        assert_eq!(cfg.max_result_segments, 0);
        assert_eq!(cfg.on_error, StoreErrorPolicy::Degrade);
        assert_eq!(cfg.probe_every, 256);
        assert_eq!(cfg.faults, None);
    }

    #[test]
    fn store_error_policy_round_trips_through_the_operator_spelling() {
        for (text, policy) in [
            ("fail", StoreErrorPolicy::Fail),
            ("degrade", StoreErrorPolicy::Degrade),
            ("drop-durability", StoreErrorPolicy::DropDurability),
        ] {
            assert_eq!(StoreErrorPolicy::parse(text).unwrap(), policy);
            assert_eq!(
                StoreErrorPolicy::parse(&policy.to_string()).unwrap(),
                policy
            );
        }
        assert!(StoreErrorPolicy::parse("explode").is_err());
    }
}
