//! `domo-sink` — run, feed, and probe the online sink service.
//!
//! ```text
//! domo-sink serve  [--ingest-port P] [--query-port Q] [--shards N]
//!                  [--queue-cap C] [--high-water H] [--threads T]
//! domo-sink replay --ingest HOST:PORT [--query HOST:PORT] [--nodes N]
//!                  [--seed S] [--rate PPS] [--garbage G] [--drain]
//! domo-sink smoke  [--nodes N] [--seed S] [--shards K]
//! domo-sink bench  [--nodes N] [--seed S] [--out PATH]
//! ```
//!
//! `serve` runs the service until killed. `replay` simulates a trace
//! and streams it to a running service. `smoke` is the self-contained
//! end-to-end check used by `scripts/check.sh`: it binds loopback
//! ports, replays a small trace (plus deliberate garbage), drains,
//! queries a snapshot, and exits nonzero unless every delivered packet
//! was reconstructed and the garbage was counted. `bench` measures
//! codec and ingestion throughput without criterion and writes the
//! numbers to `BENCH_sink.json` (override with `--out`).
//!
//! Operational messages are structured events on stderr (JSON lines),
//! filterable with `DOMO_LOG` (e.g. `DOMO_LOG=warn` or
//! `DOMO_LOG=off`); command *results* (smoke/bench summaries, queried
//! stats) stay on stdout. Live metrics are scrapeable from the query
//! port: `echo METRICS | nc HOST QUERY_PORT`.

use domo_net::{run_simulation, NetworkConfig};
use domo_sink::client::{parse_stats, replay_packets, QueryClient, ReplayOptions};
use domo_sink::server::SinkServer;
use domo_sink::service::{SinkConfig, SinkService};
use domo_sink::wire::{decode_packets, encode_packets};
use std::time::{Duration, Instant};

struct Flags {
    ingest_port: u16,
    query_port: u16,
    shards: usize,
    queue_cap: usize,
    high_water: Option<usize>,
    threads: usize,
    ingest: Option<String>,
    query: Option<String>,
    nodes: usize,
    seed: u64,
    rate: f64,
    garbage: usize,
    drain: bool,
    out: String,
}

impl Default for Flags {
    fn default() -> Self {
        Self {
            ingest_port: 7401,
            query_port: 7402,
            shards: 2,
            queue_cap: 4096,
            high_water: None,
            threads: 1,
            ingest: None,
            query: None,
            nodes: 9,
            seed: 1,
            rate: 0.0,
            garbage: 0,
            drain: false,
            out: "BENCH_sink.json".into(),
        }
    }
}

fn parse_flags(argv: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--drain" {
            f.drain = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let num = |name: &str| -> Result<u64, String> {
            value.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--ingest-port" => f.ingest_port = num(flag)? as u16,
            "--query-port" => f.query_port = num(flag)? as u16,
            "--shards" => f.shards = num(flag)? as usize,
            "--queue-cap" => f.queue_cap = num(flag)? as usize,
            "--high-water" => f.high_water = Some(num(flag)? as usize),
            "--threads" => f.threads = num(flag)? as usize,
            "--nodes" => f.nodes = num(flag)? as usize,
            "--seed" => f.seed = num(flag)?,
            "--garbage" => f.garbage = num(flag)? as usize,
            "--rate" => f.rate = value.parse().map_err(|e| format!("--rate: {e}"))?,
            "--ingest" => f.ingest = Some(value.clone()),
            "--query" => f.query = Some(value.clone()),
            "--out" => f.out = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(f)
}

fn sink_config(f: &Flags) -> SinkConfig {
    let mut cfg = SinkConfig {
        shards: f.shards,
        queue_capacity: f.queue_cap,
        high_water: f.high_water,
        ..SinkConfig::default()
    };
    // Solver threads *within* each shard's estimator (shards already
    // run concurrently with each other).
    cfg.estimator.threads = f.threads.max(1);
    cfg
}

fn serve(f: &Flags) -> Result<(), String> {
    let server = SinkServer::bind(
        ("0.0.0.0", f.ingest_port),
        ("0.0.0.0", f.query_port),
        sink_config(f),
    )
    .map_err(|e| format!("bind: {e}"))?;
    domo_obs::info!(
        target: "domo_sink",
        "serving; ^C to stop",
        ingest = server.ingest_addr().to_string(),
        query = server.query_addr().to_string(),
        shards = f.shards,
    );
    loop {
        std::thread::park();
    }
}

fn replay(f: &Flags) -> Result<(), String> {
    let ingest = f
        .ingest
        .as_deref()
        .ok_or("replay needs --ingest HOST:PORT")?;
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    domo_obs::info!(
        target: "domo_sink",
        "replaying simulated trace",
        packets = trace.packets.len(),
        nodes = f.nodes,
        seed = f.seed,
    );
    let report = replay_packets(
        ingest,
        &trace.packets,
        &ReplayOptions {
            rate_pps: f.rate,
            garbage_frames: f.garbage,
        },
    )
    .map_err(|e| format!("replay: {e}"))?;
    domo_obs::info!(
        target: "domo_sink",
        "replay sent",
        frames = report.frames,
        bytes = report.bytes,
        seconds = report.seconds,
        pkts_per_sec = report.frames as f64 / report.seconds.max(1e-9),
    );
    if let Some(query) = f.query.as_deref() {
        let mut q = QueryClient::connect(query).map_err(|e| format!("query connect: {e}"))?;
        if f.drain {
            q.request("DRAIN").map_err(|e| format!("drain: {e}"))?;
        }
        let stats = q.request("STATS").map_err(|e| format!("stats: {e}"))?;
        for line in stats {
            println!("domo-sink: {line}");
        }
    }
    Ok(())
}

fn stat(stats: &[(String, u64)], name: &str) -> u64 {
    stats.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
}

fn smoke(f: &Flags) -> Result<(), String> {
    let server = SinkServer::bind("127.0.0.1:0", "127.0.0.1:0", sink_config(f))
        .map_err(|e| format!("bind: {e}"))?;
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    let delivered = trace.packets.len();
    if delivered == 0 {
        return Err("simulated trace delivered nothing".into());
    }
    println!(
        "smoke: serving on {} / {}, replaying {} packets + garbage",
        server.ingest_addr(),
        server.query_addr(),
        delivered
    );
    let report = replay_packets(
        server.ingest_addr(),
        &trace.packets,
        &ReplayOptions {
            rate_pps: f.rate,
            garbage_frames: 3,
        },
    )
    .map_err(|e| format!("replay: {e}"))?;
    if report.frames != delivered {
        return Err(format!(
            "sent {} frames, expected {delivered}",
            report.frames
        ));
    }

    // The replay connection is closed; wait for the handler to drain it.
    let mut q =
        QueryClient::connect(server.query_addr()).map_err(|e| format!("query connect: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = parse_stats(&q.request("STATS").map_err(|e| format!("stats: {e}"))?);
        if stat(&stats, "ingested") == delivered as u64 && stat(&stats, "malformed_frames") >= 1 {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!("ingest stalled: {stats:?}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    q.request("DRAIN").map_err(|e| format!("drain: {e}"))?;
    let stats = parse_stats(&q.request("STATS").map_err(|e| format!("stats: {e}"))?);
    let emitted = stat(&stats, "emitted");
    println!(
        "smoke: ingested {} emitted {} malformed {} quarantined {} dropped {}",
        stat(&stats, "ingested"),
        emitted,
        stat(&stats, "malformed_frames"),
        stat(&stats, "quarantined"),
        stat(&stats, "backpressure_dropped"),
    );
    if emitted == 0 {
        return Err("no reconstructions emitted".into());
    }
    if emitted + stat(&stats, "backpressure_dropped") != delivered as u64 {
        return Err(format!(
            "accounting broken: emitted {emitted} + dropped {} != delivered {delivered}",
            stat(&stats, "backpressure_dropped")
        ));
    }
    // A concrete per-packet lookup must answer.
    let pid = trace.packets[0].pid;
    let lines = q
        .request(&format!("PACKET {} {}", pid.origin.index(), pid.seq))
        .map_err(|e| format!("packet query: {e}"))?;
    if !lines.first().is_some_and(|l| l.starts_with("packet ")) {
        return Err(format!("per-packet lookup failed: {lines:?}"));
    }
    let nodes = q.request("NODES").map_err(|e| format!("nodes: {e}"))?;
    if nodes.is_empty() {
        return Err("no per-node summaries".into());
    }
    // The acceptance bar for the observability layer: a METRICS scrape
    // after live traffic must expose telemetry from every pipeline
    // layer (solver, estimator, streaming, sink).
    let metrics = q.request("METRICS").map_err(|e| format!("metrics: {e}"))?;
    for family in [
        "# TYPE domo_solver_iterations histogram",
        "# TYPE domo_estimator_window_solve_seconds histogram",
        "# TYPE domo_streaming_flush_packets histogram",
        "# TYPE domo_sink_queue_depth gauge",
        "# TYPE domo_sink_ingested_total counter",
        "# TYPE domo_sink_malformed_frames_total counter",
    ] {
        if !metrics.iter().any(|l| l == family) {
            return Err(format!("METRICS scrape is missing `{family}`"));
        }
    }
    println!("smoke: METRICS exposes {} lines", metrics.len());
    server.shutdown();
    println!("smoke: OK");
    Ok(())
}

/// Mean seconds per call of `f`, repeated until the measurement is at
/// least 200 ms long (and at least 3 iterations).
fn time_per_iter(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut iters = 0u32;
    while iters < 3 || start.elapsed() < Duration::from_millis(200) {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

fn bench(f: &Flags) -> Result<(), String> {
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    let packets = trace.packets;
    if packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    let n = packets.len() as f64;
    let bytes = encode_packets(&packets).map_err(|e| format!("encode: {e}"))?;

    let encode_s = time_per_iter(|| {
        let _ = encode_packets(&packets);
    });
    let decode_s = time_per_iter(|| {
        let _ = decode_packets(&bytes);
    });
    println!(
        "bench: {} packets / {} wire bytes; encode {:.0} pkt/s, decode {:.0} pkt/s",
        packets.len(),
        bytes.len(),
        n / encode_s,
        n / decode_s
    );

    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let service = SinkService::start(SinkConfig {
            shards,
            ..SinkConfig::default()
        });
        let start = Instant::now();
        for p in &packets {
            service.ingest(p.clone());
        }
        service.drain();
        let seconds = start.elapsed().as_secs_f64();
        let stats = service.stats();
        service.shutdown();
        println!(
            "bench: {shards} shard(s): {:.0} pkt/s ({} emitted, {} dropped)",
            n / seconds,
            stats.emitted,
            stats.backpressure_dropped
        );
        rows.push(format!(
            "    {{\"shards\": {shards}, \"seconds\": {seconds:.6}, \"pkts_per_sec\": {:.1}, \
             \"emitted\": {}, \"dropped\": {}}}",
            n / seconds,
            stats.emitted,
            stats.backpressure_dropped
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sink_ingest\",\n  \"nodes\": {},\n  \"seed\": {},\n  \
         \"packets\": {},\n  \"wire_bytes\": {},\n  \"encode_pkts_per_sec\": {:.1},\n  \
         \"decode_pkts_per_sec\": {:.1},\n  \"ingest\": [\n{}\n  ]\n}}\n",
        f.nodes,
        f.seed,
        packets.len(),
        bytes.len(),
        n / encode_s,
        n / decode_s,
        rows.join(",\n")
    );
    std::fs::write(&f.out, json).map_err(|e| format!("write {}: {e}", f.out))?;
    println!("bench: wrote {}", f.out);
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: domo-sink <serve|replay|smoke|bench> [flags] (see module docs)";
    let Some(command) = argv.first() else {
        domo_obs::error!(target: "domo_sink", "missing command", usage = usage);
        std::process::exit(2);
    };
    let result = match parse_flags(&argv[1..]) {
        Err(msg) => Err(msg),
        Ok(flags) => match command.as_str() {
            "serve" => serve(&flags),
            "replay" => replay(&flags),
            "smoke" => smoke(&flags),
            "bench" => bench(&flags),
            other => Err(format!("unknown command {other}\n{usage}")),
        },
    };
    if let Err(msg) = result {
        domo_obs::error!(target: "domo_sink", "command failed", error = msg);
        std::process::exit(1);
    }
}
