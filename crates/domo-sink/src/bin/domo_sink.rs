//! `domo-sink` — run, feed, and probe the online sink service.
//!
//! ```text
//! domo-sink serve      [--ingest-port P] [--query-port Q] [--shards N]
//!                      [--queue-cap C] [--high-water H] [--threads T]
//!                      [--data-dir D] [--fsync always|interval[:N]|never]
//!                      [--checkpoint-every K] [--max-result-segments M]
//!                      [--addr-file PATH] [--idle-timeout SECS]
//!                      [--on-store-error fail|degrade|drop-durability]
//!                      [--probe-every N] [--store-faults SPEC]
//!                      [--chaos-panic SHARD:AFTER] [--max-conns M]
//!                      [--tenant-quota N] [--cluster-role NAME]
//! domo-sink replay     --ingest ADDR[,ADDR...] [--query HOST:PORT]
//!                      [--members A,B,C] [--nodes N] [--seed S]
//!                      [--rate PPS] [--garbage G] [--drain]
//!                      [--reconnects R]
//! domo-sink route      --members A,B,C [--ingest-port P]
//!                      [--addr-file PATH] [--reconnects R]
//! domo-sink cluster    --members Q1,Q2,Q3 [--exec "STATS"]
//!                      (--exec also takes "RANGE <lo> <hi>" and
//!                       "AGG <node> <start> <end> <bucket>")
//! domo-sink smoke      [--nodes N] [--seed S] [--shards K]
//! domo-sink crashsmoke [--nodes N] [--seed S] [--shards K] [--data-dir D]
//! domo-sink bench      [--nodes N] [--seed S] [--packets P] [--out PATH]
//!                      [--baseline PATH]
//! domo-sink tail       --query HOST:PORT [--node N | --path SRC:DST]
//!                      [--agg BUCKET_MS] [--replay] [--jsonl]
//!                      [--max-events N] [--reconnects R]
//! domo-sink subsmoke   [--nodes N] [--seed S] [--shards K]
//! domo-sink connsoak   [--conns C] [--packets P] [--shards K]
//!                      [--nodes N] [--seed S]
//! ```
//!
//! The cluster trio (DESIGN.md §17): `serve --cluster-role member`
//! labels a sink as one shard of a multi-process deployment (and
//! `--tenant-quota` caps every tenant namespace's accepted records);
//! `replay --ingest A,B,C` falls back round-robin across the listed
//! sinks when one dies, while `replay --members A,B,C` *routes* — an
//! embedded consistent-hash router sends every record to the member
//! owning its `(tenant, subtree-root)` key, with reconnect, failover,
//! and spool replay; `route` runs the same router as a standalone
//! wire-level relay (accept a v1/v2 ingest stream, fan frames out to
//! the owning members); `cluster` scatter-gathers a STATS / RANGE /
//! AGG query across every member's query port and prints the merged
//! reply (AGG merges the underlying sketches loss-free via `PARTS`).
//!
//! `serve` runs the service until killed; with `--data-dir` every
//! ingested record is journaled to a WAL and reconstructions land in a
//! durable result log, so a restart recovers exactly where the previous
//! process died (`--fsync` picks the durability/throughput trade-off;
//! `--addr-file` writes the two bound addresses to a file, one per
//! line, for scripts that bind port 0). `replay` simulates a trace and
//! streams it to a running service, surviving `--reconnects R` sink
//! restarts with capped exponential backoff. `smoke` is the
//! self-contained end-to-end check used by `scripts/check.sh`: it binds
//! loopback ports, replays a small trace (plus deliberate garbage),
//! drains, queries a snapshot, and exits nonzero unless every delivered
//! packet was reconstructed and the garbage was counted (`--max-conns`
//! caps live connections per listener; the excess is shed with
//! `domo_sink_shed_total{reason="overcap"}`). `crashsmoke`
//! is the crash-recovery gate: it spawns a durable `serve` child,
//! replays half a trace, SIGKILLs the child mid-ingest, respawns it on
//! the same data dir, replays the full trace, and exits nonzero unless
//! the recovered state matches an uninterrupted in-process run
//! packet-for-packet with no double-emitted results. `bench` measures
//! codec and steady-state batched-ingest throughput over a synthesized
//! `--packets`-sized workload (a warmup slice is ingested untimed) and
//! writes the numbers to `BENCH_sink.json` (override with `--out`);
//! with `--baseline PATH` it fails if any shard count's steady
//! throughput regresses more than 20% against the recorded numbers.
//! `connsoak` is the high-concurrency gate: it holds `--conns`
//! simultaneous ingest connections open against one in-process server,
//! requires exact `emitted + dropped == ingested` accounting, then
//! re-binds with a tiny cap and requires the overflow to be shed with
//! the typed overcap counter.
//!
//! `tail` follows a running sink's `SUBSCRIBE` push stream: raw
//! `packet` lines (or `bucket` aggregate lines with `--agg`), printed
//! as-is or as JSON Lines with `--jsonl`, surviving `--reconnects R`
//! sink restarts by re-subscribing with `REPLAY` and deduplicating
//! packet ids. `subsmoke` is the live-query acceptance gate used by
//! `scripts/check.sh`: against a durable in-process sink it checks
//! that a live subscriber sees exactly the emitted set (no gaps, no
//! duplicates) across a forced CHECKPOINT, that a NODE-filtered
//! subscriber sees exactly the matching subset, that a
//! disconnect-then-`REPLAY` reconnect stays exactly-once after
//! client-side dedup, and that AGG percentiles stay within the
//! sketch's documented relative error bound against an offline exact
//! computation.
//!
//! The chaos-injection flags exist for soak testing (`domo-exp chaos`
//! drives them): `--store-faults` arms a seeded fault window inside the
//! storage I/O layer (`key=value` pairs: `seed`, `eio`, `enospc`,
//! `torn`, `fsync`, `stall`, `stall_ms` as probabilities/millis, plus
//! `after`/`for` bounding the op window), `--chaos-panic SHARD:AFTER`
//! kills one shard worker after it consumes AFTER packets, and
//! `--on-store-error` picks the degradation policy. `--idle-timeout`
//! (default 60 s, `0` disables) sheds silent or wedged connections on
//! both listeners. `serve` exits nonzero if the service ever reaches
//! the `failed` health state.
//!
//! Operational messages are structured events on stderr (JSON lines),
//! filterable with `DOMO_LOG` (e.g. `DOMO_LOG=warn` or
//! `DOMO_LOG=off`); command *results* (smoke/bench summaries, queried
//! stats) stay on stdout. Live metrics are scrapeable from the query
//! port: `echo METRICS | nc HOST QUERY_PORT`.

use domo_net::{run_simulation, CollectedPacket, NetworkConfig};
use domo_sink::client::{
    parse_stats, replay_packets, replay_packets_multi, tail_events, QueryClient, ReplayOptions,
    TailOptions,
};
use domo_sink::route::{
    cluster_agg, cluster_range, cluster_stats, route_connection, route_packets, GatherReport,
    RouteOptions, Router,
};
use domo_sink::server::SinkServer;
use domo_sink::service::{SinkConfig, SinkHealth, SinkService};
use domo_sink::wire::{decode_packets, encode_packets};
use domo_sink::{StoreConfig, StoreErrorPolicy};
use domo_store::{FaultPlan, FsyncPolicy};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

struct Flags {
    ingest_port: u16,
    query_port: u16,
    shards: usize,
    queue_cap: usize,
    high_water: Option<usize>,
    threads: usize,
    ingest: Option<String>,
    query: Option<String>,
    nodes: usize,
    seed: u64,
    rate: f64,
    garbage: usize,
    drain: bool,
    out: String,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
    max_result_segments: usize,
    addr_file: Option<String>,
    reconnects: usize,
    on_store_error: StoreErrorPolicy,
    probe_every: u64,
    store_faults: Option<FaultPlan>,
    idle_timeout_secs: u64,
    chaos_panic: Option<(usize, u64)>,
    node: Option<u16>,
    path_filter: Option<(u16, u16)>,
    agg_bucket: Option<u64>,
    sub_replay: bool,
    jsonl: bool,
    max_events: u64,
    max_conns: usize,
    conns: usize,
    packets: usize,
    baseline: Option<String>,
    members: Option<String>,
    exec: String,
    tenant_quota: Option<u64>,
    cluster_role: Option<String>,
}

impl Default for Flags {
    fn default() -> Self {
        Self {
            ingest_port: 7401,
            query_port: 7402,
            shards: 2,
            queue_cap: 4096,
            high_water: None,
            threads: 1,
            ingest: None,
            query: None,
            nodes: 9,
            seed: 1,
            rate: 0.0,
            garbage: 0,
            drain: false,
            out: "BENCH_sink.json".into(),
            data_dir: None,
            fsync: FsyncPolicy::Interval(64),
            checkpoint_every: 4096,
            max_result_segments: 0,
            addr_file: None,
            reconnects: 0,
            on_store_error: StoreErrorPolicy::Degrade,
            probe_every: 256,
            store_faults: None,
            idle_timeout_secs: 60,
            chaos_panic: None,
            node: None,
            path_filter: None,
            agg_bucket: None,
            sub_replay: false,
            jsonl: false,
            max_events: 0,
            max_conns: 4096,
            conns: 1100,
            packets: 100_000,
            baseline: None,
            members: None,
            exec: "STATS".into(),
            tenant_quota: None,
            cluster_role: None,
        }
    }
}

/// Parses a `--store-faults` spec: comma-separated `key=value` pairs
/// over [`FaultPlan`]'s fields (`seed`, `eio`, `enospc`, `torn`,
/// `fsync`, `stall`, `stall_ms`, `after`, `for`).
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    for pair in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("--store-faults: `{pair}` is not key=value"))?;
        let fnum = || -> Result<f64, String> {
            value
                .parse()
                .map_err(|e| format!("--store-faults {key}: {e}"))
        };
        let unum = || -> Result<u64, String> {
            value
                .parse()
                .map_err(|e| format!("--store-faults {key}: {e}"))
        };
        match key {
            "seed" => plan.seed = unum()?,
            "eio" => plan.eio = fnum()?,
            "enospc" => plan.enospc = fnum()?,
            "torn" => plan.torn = fnum()?,
            "fsync" => plan.fsync = fnum()?,
            "stall" => plan.stall = fnum()?,
            "stall_ms" => plan.stall_ms = unum()?,
            "after" => plan.after_ops = unum()?,
            "for" => plan.for_ops = unum()?,
            other => return Err(format!("--store-faults: unknown key `{other}`")),
        }
    }
    Ok(plan)
}

/// Parses `--chaos-panic SHARD:AFTER`.
fn parse_chaos_panic(spec: &str) -> Result<(usize, u64), String> {
    let (shard, after) = spec
        .split_once(':')
        .ok_or_else(|| format!("--chaos-panic: `{spec}` is not SHARD:AFTER"))?;
    Ok((
        shard
            .parse()
            .map_err(|e| format!("--chaos-panic shard: {e}"))?,
        after
            .parse()
            .map_err(|e| format!("--chaos-panic after: {e}"))?,
    ))
}

fn parse_flags(argv: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--drain" {
            f.drain = true;
            continue;
        }
        if flag == "--replay" {
            f.sub_replay = true;
            continue;
        }
        if flag == "--jsonl" {
            f.jsonl = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let num = |name: &str| -> Result<u64, String> {
            value.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--ingest-port" => f.ingest_port = num(flag)? as u16,
            "--query-port" => f.query_port = num(flag)? as u16,
            "--shards" => f.shards = num(flag)? as usize,
            "--queue-cap" => f.queue_cap = num(flag)? as usize,
            "--high-water" => f.high_water = Some(num(flag)? as usize),
            "--threads" => f.threads = num(flag)? as usize,
            "--nodes" => f.nodes = num(flag)? as usize,
            "--seed" => f.seed = num(flag)?,
            "--garbage" => f.garbage = num(flag)? as usize,
            "--rate" => f.rate = value.parse().map_err(|e| format!("--rate: {e}"))?,
            "--ingest" => f.ingest = Some(value.clone()),
            "--query" => f.query = Some(value.clone()),
            "--out" => f.out = value.clone(),
            "--data-dir" => f.data_dir = Some(value.clone()),
            "--fsync" => {
                f.fsync = FsyncPolicy::parse(value).map_err(|e| format!("--fsync: {e}"))?
            }
            "--checkpoint-every" => f.checkpoint_every = num(flag)?,
            "--max-result-segments" => f.max_result_segments = num(flag)? as usize,
            "--addr-file" => f.addr_file = Some(value.clone()),
            "--reconnects" => f.reconnects = num(flag)? as usize,
            "--on-store-error" => {
                f.on_store_error =
                    StoreErrorPolicy::parse(value).map_err(|e| format!("--on-store-error: {e}"))?
            }
            "--probe-every" => f.probe_every = num(flag)?,
            "--store-faults" => f.store_faults = Some(parse_fault_plan(value)?),
            "--idle-timeout" => f.idle_timeout_secs = num(flag)?,
            "--chaos-panic" => f.chaos_panic = Some(parse_chaos_panic(value)?),
            "--node" => f.node = Some(num(flag)? as u16),
            "--path" => {
                let (src, dst) = value
                    .split_once(':')
                    .ok_or_else(|| format!("--path: `{value}` is not SRC:DST"))?;
                f.path_filter = Some((
                    src.parse().map_err(|e| format!("--path src: {e}"))?,
                    dst.parse().map_err(|e| format!("--path dst: {e}"))?,
                ));
            }
            "--agg" => f.agg_bucket = Some(num(flag)?),
            "--max-events" => f.max_events = num(flag)?,
            "--max-conns" => f.max_conns = num(flag)? as usize,
            "--conns" => f.conns = num(flag)? as usize,
            "--packets" => f.packets = num(flag)? as usize,
            "--baseline" => f.baseline = Some(value.clone()),
            "--members" => f.members = Some(value.clone()),
            "--exec" => f.exec = value.clone(),
            "--tenant-quota" => f.tenant_quota = Some(num(flag)?),
            "--cluster-role" => f.cluster_role = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(f)
}

fn sink_config(f: &Flags) -> SinkConfig {
    let idle = (f.idle_timeout_secs > 0).then(|| Duration::from_secs(f.idle_timeout_secs));
    let mut cfg = SinkConfig {
        shards: f.shards,
        queue_capacity: f.queue_cap,
        high_water: f.high_water,
        store: f.data_dir.as_ref().map(|dir| StoreConfig {
            data_dir: dir.into(),
            fsync: f.fsync,
            checkpoint_every: f.checkpoint_every,
            max_result_segments: f.max_result_segments,
            on_error: f.on_store_error,
            probe_every: f.probe_every,
            faults: f.store_faults,
        }),
        ingest_idle_timeout: idle,
        query_idle_timeout: idle,
        max_conns: f.max_conns,
        tenant_quota: f.tenant_quota,
        ..SinkConfig::default()
    };
    if let Some(role) = f.cluster_role.as_deref() {
        cfg.cluster_role = role.to_string();
    }
    // Solver threads *within* each shard's estimator (shards already
    // run concurrently with each other).
    cfg.estimator.threads = f.threads.max(1);
    cfg
}

fn serve(f: &Flags) -> Result<(), String> {
    let server = SinkServer::bind(
        ("0.0.0.0", f.ingest_port),
        ("0.0.0.0", f.query_port),
        sink_config(f),
    )
    .map_err(|e| format!("bind: {e}"))?;
    if let Some(path) = f.addr_file.as_deref() {
        // Written atomically (tmp + rename) so a polling script never
        // reads a half-written file.
        let tmp = format!("{path}.tmp");
        std::fs::write(
            &tmp,
            format!("{}\n{}\n", server.ingest_addr(), server.query_addr()),
        )
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| format!("addr-file {path}: {e}"))?;
    }
    if let Some((shard, after)) = f.chaos_panic {
        server.service().chaos_panic_shard(shard, after);
        domo_obs::warn!(
            target: "domo_sink",
            "chaos panic armed",
            shard = shard,
            after = after,
        );
    }
    domo_obs::info!(
        target: "domo_sink",
        "serving; ^C to stop",
        ingest = server.ingest_addr().to_string(),
        query = server.query_addr().to_string(),
        shards = f.shards,
        durable = f.data_dir.is_some(),
    );
    // Watch the health state machine: `failed` is terminal (the
    // operator chose --on-store-error fail), so exit nonzero rather
    // than serve a sink whose durability contract is void.
    loop {
        std::thread::park_timeout(Duration::from_secs(1));
        if server.service().health() == SinkHealth::Failed {
            return Err("store failed and --on-store-error is `fail`; exiting".into());
        }
    }
}

/// Splits a comma-separated address list, dropping empty entries.
fn split_list(spec: &str) -> Vec<String> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(String::from)
        .collect()
}

fn replay(f: &Flags) -> Result<(), String> {
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    domo_obs::info!(
        target: "domo_sink",
        "replaying simulated trace",
        packets = trace.packets.len(),
        nodes = f.nodes,
        seed = f.seed,
    );
    if let Some(members) = f.members.as_deref() {
        // Cluster mode: an embedded consistent-hash router sends each
        // record to the member owning its (tenant, subtree-root) key.
        let report = route_packets(
            split_list(members),
            &trace.packets,
            RouteOptions {
                max_reconnects: f.reconnects.max(1),
                ..RouteOptions::default()
            },
        )
        .map_err(|e| format!("route: {e}"))?;
        domo_obs::info!(
            target: "domo_sink",
            "replay routed",
            forwarded = report.forwarded,
            rerouted = report.rerouted,
            bytes = report.bytes,
            reconnects = report.reconnects,
            failovers = report.failovers,
            spool_dropped = report.spool_dropped,
        );
    } else {
        // Plain mode: one sink (or a comma-separated fallback list the
        // client walks round-robin when a connection dies).
        let addrs = split_list(
            f.ingest
                .as_deref()
                .ok_or("replay needs --ingest ADDR[,ADDR...] (or --members A,B,C)")?,
        );
        let report = replay_packets_multi(
            &addrs,
            &trace.packets,
            &ReplayOptions {
                rate_pps: f.rate,
                garbage_frames: f.garbage,
                max_reconnects: f.reconnects,
                ..ReplayOptions::default()
            },
        )
        .map_err(|e| format!("replay: {e}"))?;
        domo_obs::info!(
            target: "domo_sink",
            "replay sent",
            frames = report.frames,
            bytes = report.bytes,
            seconds = report.seconds,
            pkts_per_sec = report.frames as f64 / report.seconds.max(1e-9),
        );
    }
    if let Some(query) = f.query.as_deref() {
        let mut q = QueryClient::connect(query).map_err(|e| format!("query connect: {e}"))?;
        if f.drain {
            q.request("DRAIN").map_err(|e| format!("drain: {e}"))?;
        }
        let stats = q.request("STATS").map_err(|e| format!("stats: {e}"))?;
        for line in stats {
            println!("domo-sink: {line}");
        }
    }
    Ok(())
}

/// Standalone cluster relay: accepts v1/v2 ingest streams and fans
/// every decoded frame out to the member owning its
/// `(tenant, subtree-root)` key, surviving member deaths by failover
/// and spool replay (DESIGN.md §17.3). Runs until killed.
fn route(f: &Flags) -> Result<(), String> {
    let members = split_list(
        f.members
            .as_deref()
            .ok_or("route needs --members A,B,C (ingest addresses)")?,
    );
    let listener = std::net::TcpListener::bind(("0.0.0.0", f.ingest_port))
        .map_err(|e| format!("bind: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("addr: {e}"))?;
    if let Some(path) = f.addr_file.as_deref() {
        // Same atomic write the serve path uses; one line, the relay
        // has no query port of its own.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{local}\n"))
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| format!("addr-file {path}: {e}"))?;
    }
    let mut router = Router::new(
        members.iter().cloned(),
        RouteOptions {
            max_reconnects: f.reconnects.max(3),
            ..RouteOptions::default()
        },
    )
    .map_err(|e| format!("router: {e}"))?;
    domo_obs::info!(
        target: "domo_sink",
        "routing; ^C to stop",
        ingest = local.to_string(),
        members = members.join(","),
    );
    loop {
        let (stream, peer) = listener.accept().map_err(|e| format!("accept: {e}"))?;
        let routed =
            route_connection(stream, &mut router).map_err(|e| format!("cluster unusable: {e}"))?;
        domo_obs::info!(
            target: "domo_sink",
            "connection drained",
            peer = peer.to_string(),
            routed = routed,
            live_members = router.live_members().len(),
        );
    }
}

/// Prints which members a scatter-gather query reached.
fn print_gather(report: &GatherReport) {
    println!(
        "cluster: reached {} member(s){}",
        report.reached.len(),
        if report.missed.is_empty() {
            String::new()
        } else {
            format!(", missed {}", report.missed.join(","))
        }
    );
}

/// Scatter-gather query mode: fans one STATS / RANGE / AGG query
/// across every member's query port and prints the merged reply
/// (DESIGN.md §17.4).
fn cluster(f: &Flags) -> Result<(), String> {
    let members = split_list(
        f.members
            .as_deref()
            .ok_or("cluster needs --members Q1,Q2,Q3 (query addresses)")?,
    );
    let fields: Vec<&str> = f.exec.split_whitespace().collect();
    let farg = |i: usize, name: &str| -> Result<f64, String> {
        fields
            .get(i)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("--exec {}: bad or missing {name}", f.exec))
    };
    match fields.first().copied() {
        Some("STATS") | None => {
            let (stats, report) = cluster_stats(&members).map_err(|e| format!("stats: {e}"))?;
            for (name, value) in &stats {
                println!("{name} {value}");
            }
            print_gather(&report);
        }
        Some("RANGE") => {
            let (lo, hi) = (farg(1, "lo_ms")?, farg(2, "hi_ms")?);
            let (lines, report) =
                cluster_range(&members, lo, hi).map_err(|e| format!("range: {e}"))?;
            for line in &lines {
                println!("{line}");
            }
            println!("count {}", lines.len());
            print_gather(&report);
        }
        Some("AGG") => {
            let node = farg(1, "node")? as u16;
            let (start, end) = (farg(2, "start_ms")?, farg(3, "end_ms")?);
            let bucket = farg(4, "bucket_ms")? as u64;
            let (buckets, report) =
                cluster_agg(&members, node, start, end, bucket).map_err(|e| format!("agg: {e}"))?;
            for b in &buckets {
                // Same line shape the single-sink AGG reply uses.
                println!(
                    "bucket {} count {} mean {:.3} p50 {:.3} p95 {:.3} p99 {:.3} max {:.3}",
                    b.start_ms, b.count, b.mean, b.p50, b.p95, b.p99, b.max
                );
            }
            println!("count {}", buckets.len());
            print_gather(&report);
        }
        Some(other) => {
            return Err(format!(
                "--exec: unknown query `{other}` (STATS, RANGE <lo> <hi>, \
                 AGG <node> <start> <end> <bucket>)"
            ));
        }
    }
    Ok(())
}

fn stat(stats: &[(String, u64)], name: &str) -> u64 {
    stats.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
}

fn smoke(f: &Flags) -> Result<(), String> {
    // Sample every packet so the end-to-end TRACE check below always
    // has a journey to show. Must happen before the replay: the first
    // stamp (reactor_read) fires at frame-decode time.
    domo_obs::trace::set_sample_every(Some(1));
    let server = SinkServer::bind("127.0.0.1:0", "127.0.0.1:0", sink_config(f))
        .map_err(|e| format!("bind: {e}"))?;
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    let delivered = trace.packets.len();
    if delivered == 0 {
        return Err("simulated trace delivered nothing".into());
    }
    println!(
        "smoke: serving on {} / {}, replaying {} packets + garbage",
        server.ingest_addr(),
        server.query_addr(),
        delivered
    );
    let report = replay_packets(
        server.ingest_addr(),
        &trace.packets,
        &ReplayOptions {
            rate_pps: f.rate,
            garbage_frames: 3,
            ..ReplayOptions::default()
        },
    )
    .map_err(|e| format!("replay: {e}"))?;
    if report.frames != delivered {
        return Err(format!(
            "sent {} frames, expected {delivered}",
            report.frames
        ));
    }

    // The replay connection is closed; wait for the handler to drain it.
    let mut q =
        QueryClient::connect(server.query_addr()).map_err(|e| format!("query connect: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = parse_stats(&q.request("STATS").map_err(|e| format!("stats: {e}"))?);
        if stat(&stats, "ingested") == delivered as u64 && stat(&stats, "malformed_frames") >= 1 {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!("ingest stalled: {stats:?}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    q.request("DRAIN").map_err(|e| format!("drain: {e}"))?;
    let stats = parse_stats(&q.request("STATS").map_err(|e| format!("stats: {e}"))?);
    let emitted = stat(&stats, "emitted");
    println!(
        "smoke: ingested {} emitted {} malformed {} quarantined {} dropped {}",
        stat(&stats, "ingested"),
        emitted,
        stat(&stats, "malformed_frames"),
        stat(&stats, "quarantined"),
        stat(&stats, "backpressure_dropped"),
    );
    if emitted == 0 {
        return Err("no reconstructions emitted".into());
    }
    if emitted + stat(&stats, "backpressure_dropped") != delivered as u64 {
        return Err(format!(
            "accounting broken: emitted {emitted} + dropped {} != delivered {delivered}",
            stat(&stats, "backpressure_dropped")
        ));
    }
    // A concrete per-packet lookup must answer.
    let pid = trace.packets[0].pid;
    let lines = q
        .request(&format!("PACKET {} {}", pid.origin.index(), pid.seq))
        .map_err(|e| format!("packet query: {e}"))?;
    if !lines.first().is_some_and(|l| l.starts_with("packet ")) {
        return Err(format!("per-packet lookup failed: {lines:?}"));
    }
    let nodes = q.request("NODES").map_err(|e| format!("nodes: {e}"))?;
    if nodes.is_empty() {
        return Err("no per-node summaries".into());
    }
    // The acceptance bar for the observability layer: a METRICS scrape
    // after live traffic must expose telemetry from every pipeline
    // layer (solver, estimator, streaming, sink).
    let metrics = q.request("METRICS").map_err(|e| format!("metrics: {e}"))?;
    for family in [
        "# TYPE domo_solver_iterations histogram",
        "# TYPE domo_estimator_window_solve_seconds histogram",
        "# TYPE domo_streaming_flush_packets histogram",
        "# TYPE domo_sink_queue_depth gauge",
        "# TYPE domo_sink_ingested_total counter",
        "# TYPE domo_sink_malformed_frames_total counter",
        "# TYPE domo_sink_degraded gauge",
        "# TYPE domo_sink_degraded_total counter",
        "# TYPE domo_store_io_faults_total counter",
        "# TYPE domo_store_io_faults_armed gauge",
    ] {
        if !metrics.iter().any(|l| l == family) {
            return Err(format!("METRICS scrape is missing `{family}`"));
        }
    }
    println!("smoke: METRICS exposes {} lines", metrics.len());
    // Every pipeline stage must export its own latency series once the
    // trace sampler has seen traffic.
    for stage in domo_obs::trace::Stage::ALL {
        let needle = format!(
            "domo_trace_stage_seconds_count{{stage=\"{}\"}}",
            stage.name()
        );
        if !metrics.iter().any(|l| l.starts_with(&needle)) {
            return Err(format!(
                "METRICS is missing the `{}` stage series",
                stage.name()
            ));
        }
    }
    // METRICS JSON carries the histogram bucket bounds so downstream
    // consumers can rebuild the distributions without hardcoding them.
    let json = q
        .request("METRICS JSON")
        .map_err(|e| format!("metrics json: {e}"))?;
    if !json.iter().any(|l| l.contains("\"bounds\":[0.000001,")) {
        return Err("METRICS JSON is missing histogram `bounds`".into());
    }
    // A sampled packet's journey must cover the pipeline end to end, in
    // stage order (volatile smoke: no wal_append, no subscribers).
    let lines = q
        .request(&format!("TRACE {} {}", pid.origin.index(), pid.seq))
        .map_err(|e| format!("trace query: {e}"))?;
    let stage_lines: Vec<&String> = lines.iter().filter(|l| l.starts_with("stage ")).collect();
    if stage_lines.len() < 6 {
        return Err(format!(
            "TRACE shows {} stages, want >=6: {lines:?}",
            stage_lines.len()
        ));
    }
    let catalog: Vec<&str> = domo_obs::trace::Stage::ALL
        .iter()
        .map(|s| s.name())
        .collect();
    let mut last = 0usize;
    for line in &stage_lines {
        let name = line.split_whitespace().nth(1).unwrap_or("");
        let idx = catalog
            .iter()
            .position(|c| *c == name)
            .ok_or_else(|| format!("TRACE reports unknown stage `{name}`"))?;
        if idx < last {
            return Err(format!("TRACE stages out of pipeline order: {lines:?}"));
        }
        last = idx;
    }
    println!("smoke: TRACE shows {} pipeline stages", stage_lines.len());
    // A plain-HTTP scraper can pull the same metrics off the query port.
    {
        use std::io::{Read, Write};
        let mut conn = std::net::TcpStream::connect(server.query_addr())
            .map_err(|e| format!("http connect: {e}"))?;
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: sink\r\n\r\n")
            .map_err(|e| format!("http send: {e}"))?;
        let mut resp = String::new();
        conn.read_to_string(&mut resp)
            .map_err(|e| format!("http read: {e}"))?;
        if !resp.starts_with("HTTP/1.1 200 OK\r\n") || !resp.contains("# TYPE ") {
            return Err(format!(
                "GET /metrics returned an unexpected response: {}",
                resp.lines().next().unwrap_or("<empty>")
            ));
        }
        println!("smoke: GET /metrics served {} bytes", resp.len());
    }
    server.shutdown();
    println!("smoke: OK");
    Ok(())
}

/// Kills the wrapped child on scope exit, so an error path can never
/// leak a `serve` process — a leaked child inherits the parent's stdio
/// pipes and wedges any harness waiting for them to close.
struct ChildGuard(std::process::Child);

impl ChildGuard {
    fn kill(&mut self) -> Result<(), String> {
        self.0.kill().map_err(|e| format!("kill: {e}"))?;
        let _ = self.0.wait();
        Ok(())
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `domo-sink serve` as a child on OS-assigned loopback ports
/// and polls its `--addr-file` until both addresses appear.
fn spawn_durable_serve(
    data_dir: &str,
    shards: usize,
    addr_file: &std::path::Path,
) -> Result<(ChildGuard, String, String), String> {
    let _ = std::fs::remove_file(addr_file);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let child = std::process::Command::new(exe)
        .args([
            "serve",
            "--ingest-port",
            "0",
            "--query-port",
            "0",
            "--shards",
            &shards.to_string(),
            "--data-dir",
            data_dir,
            "--fsync",
            "interval:8",
            "--checkpoint-every",
            "32",
            "--addr-file",
            &addr_file.display().to_string(),
        ])
        .spawn()
        .map_err(|e| format!("spawn serve: {e}"))?;
    let child = ChildGuard(child);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let mut lines = text.lines();
            if let (Some(ingest), Some(query)) = (lines.next(), lines.next()) {
                return Ok((child, ingest.to_string(), query.to_string()));
            }
        }
        if Instant::now() > deadline {
            return Err("serve child never published its addresses".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The crash-recovery acceptance gate: SIGKILL a durable sink
/// mid-ingest, restart it on the same data dir, and require the final
/// queryable state to match an uninterrupted in-process run exactly.
fn crashsmoke(f: &Flags) -> Result<(), String> {
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    let total = trace.packets.len();
    if total < 4 {
        return Err("trace too small for a meaningful crash test".into());
    }
    let scratch;
    let data_dir = match f.data_dir.as_deref() {
        Some(d) => d.to_string(),
        None => {
            scratch = std::env::temp_dir().join(format!("domo-crashsmoke-{}", std::process::id()));
            scratch.display().to_string()
        }
    };
    let _ = std::fs::remove_dir_all(&data_dir);
    let addr_file =
        std::env::temp_dir().join(format!("domo-crashsmoke-addr-{}", std::process::id()));

    // Phase 1: serve, ingest half the trace, and SIGKILL the process
    // once the half is acknowledged in STATS — the WAL holds it, the
    // result log and checkpoints hold whatever the shards got to.
    let (mut child, ingest, query) = spawn_durable_serve(&data_dir, f.shards, &addr_file)?;
    let half = total / 2;
    println!("crashsmoke: phase 1 serving at {ingest} / {query}, replaying {half}/{total} packets");
    replay_packets(
        &ingest as &str,
        &trace.packets[..half],
        &ReplayOptions {
            max_reconnects: 4,
            ..ReplayOptions::default()
        },
    )
    .map_err(|e| format!("phase-1 replay: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats =
            parse_stats(&query_lines(&query, "STATS").map_err(|e| format!("phase-1 stats: {e}"))?);
        if stat(&stats, "ingested") >= half as u64 {
            break;
        }
        if Instant::now() > deadline {
            return Err("phase-1 ingest stalled".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill()?;
    println!("crashsmoke: SIGKILLed the sink after {half} acknowledged packets");

    // Phase 2: restart on the same data dir. Recovery replays the WAL
    // tail; the full replay then fills in the unsent half (the already
    // durable prefix is deduplicated, never double-stored).
    let (mut child, ingest, query) = spawn_durable_serve(&data_dir, f.shards, &addr_file)?;
    // Counter baseline before the replay: every phase-2 frame lands in
    // exactly one of ingested/quarantined, so the delta reaching the
    // trace size means the socket is fully consumed.
    let base = parse_stats(&query_lines(&query, "STATS").map_err(|e| format!("base stats: {e}"))?);
    let base_seen = stat(&base, "ingested") + stat(&base, "quarantined");
    replay_packets(
        &ingest as &str,
        &trace.packets,
        &ReplayOptions {
            max_reconnects: 4,
            ..ReplayOptions::default()
        },
    )
    .map_err(|e| format!("phase-2 replay: {e}"))?;
    // Wait for ingest to finish before the first DRAIN: draining while
    // frames are still in flight would flush the estimator mid-stream,
    // legitimately changing window boundaries (and thus estimates)
    // relative to the uninterrupted reference.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats =
            parse_stats(&query_lines(&query, "STATS").map_err(|e| format!("phase-2 stats: {e}"))?);
        if stat(&stats, "ingested") + stat(&stats, "quarantined") >= base_seen + total as u64 {
            break;
        }
        if Instant::now() > deadline {
            return Err("phase-2 ingest stalled".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Uninterrupted reference with the same shard layout: identical
    // per-shard ingest order makes the estimates bit-identical, so the
    // %.3f-formatted query lines must match verbatim.
    let reference = SinkService::start(SinkConfig {
        shards: f.shards,
        ..SinkConfig::default()
    });
    for p in &trace.packets {
        reference.ingest(p.clone());
    }
    reference.drain();
    let mut expected: Vec<String> = trace
        .packets
        .iter()
        .map(|p| {
            let r = reference
                .reconstruction(p.pid)
                .ok_or_else(|| format!("reference lost {}", p.pid))?;
            let path: Vec<String> = r.path.iter().map(|n| n.index().to_string()).collect();
            let times: Vec<String> = r.hop_times_ms.iter().map(|t| format!("{t:.3}")).collect();
            Ok(format!(
                "packet {} path {} times {}",
                p.pid,
                path.join("-"),
                times.join(" ")
            ))
        })
        .collect::<Result<_, String>>()?;
    reference.shutdown();
    expected.sort();

    // Drain and poll until every packet is durably queryable.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut got: Vec<String>;
    loop {
        query_lines(&query, "DRAIN").map_err(|e| format!("phase-2 drain: {e}"))?;
        let mut lines = query_lines(&query, "RANGE -inf inf").map_err(|e| format!("range: {e}"))?;
        let count_line = lines.pop().unwrap_or_default();
        if count_line == format!("count {total}") {
            got = lines;
            break;
        }
        if lines.len() > total {
            return Err(format!(
                "double-emit: RANGE returned {} records for {total} packets",
                lines.len()
            ));
        }
        if Instant::now() > deadline {
            return Err(format!(
                "recovery stalled: {count_line} (want count {total})"
            ));
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    got.sort();
    if got != expected {
        let diff = got
            .iter()
            .zip(&expected)
            .find(|(g, e)| g != e)
            .map(|(g, e)| format!("got `{g}` want `{e}`"))
            .unwrap_or_else(|| "length mismatch".into());
        return Err(format!("recovered state diverges from clean run: {diff}"));
    }
    // Spot-check the PACKET command path against the same truth.
    let pid = trace.packets[total - 1].pid;
    let lines = query_lines(
        &query,
        &format!("PACKET {} {}", pid.origin.index(), pid.seq),
    )
    .map_err(|e| format!("packet query: {e}"))?;
    if lines.first().map(String::as_str)
        != expected.iter().find_map(|l| {
            l.starts_with(&format!("packet {pid} path "))
                .then_some(l.as_str())
        })
    {
        return Err(format!("PACKET after recovery diverges: {lines:?}"));
    }
    // The durability posture must be visible to operators.
    let stats = query_lines(&query, "STATS").map_err(|e| format!("stats: {e}"))?;
    if !stats.iter().any(|l| l.starts_with("data_dir ")) {
        return Err("STATS does not report data_dir".into());
    }
    let store = query_lines(&query, "STORE STATS").map_err(|e| format!("store stats: {e}"))?;
    println!("crashsmoke: recovered {total}/{total} packets bit-identically");
    for line in store.iter().filter(|l| l.starts_with("recovery_")) {
        println!("crashsmoke: {line}");
    }
    child.kill()?;
    let _ = std::fs::remove_dir_all(&data_dir);
    let _ = std::fs::remove_file(&addr_file);
    println!("crashsmoke: OK");
    Ok(())
}

fn query_lines(addr: &str, command: &str) -> std::io::Result<Vec<String>> {
    QueryClient::connect(addr)?.request(command)
}

/// Mean seconds per call of `f`, repeated until the measurement is at
/// least 200 ms long (and at least 3 iterations).
fn time_per_iter(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut iters = 0u32;
    while iters < 3 || start.elapsed() < Duration::from_millis(200) {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

/// Replicates a simulated trace time-shifted until it holds at least
/// `target` packets. Each replica round advances every timestamp by
/// the base trace's full span (timestamps stay monotone, sanitize
/// passes) and offsets every sequence number past the round before it
/// (pids stay unique, dedup never fires), so the workload measures
/// steady-state ingest rather than the 176-packet setup transient the
/// old bench timed.
fn synthesize_workload(base: &[CollectedPacket], target: usize) -> Vec<CollectedPacket> {
    use domo_util::time::{SimDuration, SimTime};
    let span = base
        .iter()
        .map(|p| p.sink_arrival)
        .max()
        .unwrap_or(SimTime::ZERO)
        .saturating_sub(SimTime::ZERO)
        + SimDuration::from_millis(1);
    let seq_stride = base.iter().map(|p| p.pid.seq).max().unwrap_or(0) + 1;
    let rounds = target.div_ceil(base.len().max(1));
    let mut out = Vec::with_capacity(rounds * base.len());
    for round in 0..rounds {
        let shift = span * round as u64;
        for p in base {
            let mut q = p.clone();
            q.pid.seq += seq_stride * round as u32;
            q.gen_time += shift;
            q.sink_arrival += shift;
            out.push(q);
        }
    }
    out
}

/// Pulls `(shards, steady_pkts_per_sec)` rows out of a previously
/// written bench JSON (hand-rolled like the writer — no parser dep).
fn baseline_steady_rows(text: &str) -> Vec<(usize, f64)> {
    let number_after = |hay: &str, key: &str| -> Option<(usize, f64)> {
        let at = hay.find(key)?;
        let rest = hay[at + key.len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok().map(|v| (at, v))
    };
    let mut rows = Vec::new();
    let mut cursor = 0;
    while let Some((at, shards)) = number_after(&text[cursor..], "\"shards\":") {
        let from = cursor + at;
        if let Some((_, v)) = number_after(&text[from..], "\"steady_pkts_per_sec\":") {
            rows.push((shards as usize, v));
        }
        cursor = from + 1;
    }
    rows
}

/// Packets handed to `ingest_batch` per call during the bench — the
/// reactor's own cap is larger; this matches a realistic sweep burst.
const BENCH_BATCH: usize = 512;

/// Full ingest passes per shard count; the fastest is reported.
const BENCH_REPS: usize = 5;

fn bench(f: &Flags) -> Result<(), String> {
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    if trace.packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    let workload = synthesize_workload(&trace.packets, f.packets.max(trace.packets.len()));
    let warmup = (workload.len() / 10).min(8_192);
    let steady = &workload[warmup..];
    let n = steady.len() as f64;
    let bytes = encode_packets(&workload).map_err(|e| format!("encode: {e}"))?;

    let encode_s = time_per_iter(|| {
        let _ = encode_packets(&workload);
    }) / workload.len() as f64;
    let decode_s = time_per_iter(|| {
        let _ = decode_packets(&bytes);
    }) / workload.len() as f64;
    println!(
        "bench: {} packets ({} warmup) / {} wire bytes; encode {:.0} pkt/s, decode {:.0} pkt/s",
        workload.len(),
        warmup,
        bytes.len(),
        1.0 / encode_s,
        1.0 / decode_s
    );

    let mut rows = Vec::new();
    let mut steady_by_shards = Vec::new();
    for shards in [1usize, 2, 4] {
        // Best of BENCH_REPS full passes: a single ~100 ms window on a
        // loaded box is dominated by scheduler interference from the
        // shard workers, so the least-preempted pass is the one that
        // measures the submit path.
        let mut best: Option<(f64, f64, u64, u64)> = None;
        for _rep in 0..BENCH_REPS {
            let service = SinkService::start(SinkConfig {
                shards,
                ..SinkConfig::default()
            });
            // Warmup fills the shard queues and faults in every lazy
            // metric so the timed window measures steady state only.
            for chunk in workload[..warmup].chunks(BENCH_BATCH) {
                service.ingest_batch(chunk);
            }
            // The reactor hands the service freshly decoded *owned*
            // batches; pre-materialize the same shape so the timed
            // window measures the submit path, not a benchmark-only
            // clone.
            let owned: Vec<Vec<CollectedPacket>> = steady
                .chunks(BENCH_BATCH)
                .map(<[CollectedPacket]>::to_vec)
                .collect();
            let start = Instant::now();
            for chunk in owned {
                service.ingest_batch_owned(chunk);
            }
            let seconds = start.elapsed().as_secs_f64();
            service.drain();
            let stats = service.stats();
            service.shutdown();
            if stats.ingested != workload.len() as u64 {
                return Err(format!(
                    "bench lost packets: ingested {} of {}",
                    stats.ingested,
                    workload.len()
                ));
            }
            if stats.emitted + stats.backpressure_dropped != stats.ingested {
                return Err(format!(
                    "accounting broken at {shards} shard(s): emitted {} + dropped {} \
                     != ingested {}",
                    stats.emitted, stats.backpressure_dropped, stats.ingested
                ));
            }
            let pps = n / seconds;
            if best.is_none_or(|(b, _, _, _)| pps > b) {
                best = Some((pps, seconds, stats.emitted, stats.backpressure_dropped));
            }
        }
        let (steady_pps, seconds, emitted, dropped) = best.ok_or("no bench repetitions ran")?;
        println!(
            "bench: {shards} shard(s): steady ingest {steady_pps:.0} pkt/s \
             ({emitted} emitted, {dropped} dropped)"
        );
        steady_by_shards.push((shards, steady_pps));
        rows.push(format!(
            "    {{\"shards\": {shards}, \"steady_packets\": {}, \"seconds\": {seconds:.6}, \
             \"steady_pkts_per_sec\": {steady_pps:.1}, \"emitted\": {emitted}, \
             \"dropped\": {dropped}}}",
            steady.len()
        ));
    }

    // The tentpole's acceptance ratio: batched ingest at the widest
    // shard count must reach at least 10% of raw decode throughput.
    let (widest, widest_pps) = *steady_by_shards.last().ok_or("no ingest rows measured")?;
    let ratio = widest_pps * decode_s;
    println!("bench: ingest/decode ratio at {widest} shards: {ratio:.3}");
    if ratio < 0.10 {
        return Err(format!(
            "steady ingest at {widest} shards is {ratio:.3} of decode throughput (< 0.10)"
        ));
    }

    if let Some(path) = f.baseline.as_deref() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("baseline {path}: {e}"))?;
        let old = baseline_steady_rows(&text);
        if old.is_empty() {
            return Err(format!("baseline {path} has no steady_pkts_per_sec rows"));
        }
        for (shards, old_pps) in old {
            let Some(&(_, new_pps)) = steady_by_shards.iter().find(|(s, _)| *s == shards) else {
                continue;
            };
            if new_pps < 0.8 * old_pps {
                return Err(format!(
                    "regression at {shards} shard(s): {new_pps:.0} pkt/s < 80% of \
                     baseline {old_pps:.0}"
                ));
            }
            println!("bench: {shards} shard(s) vs baseline: {new_pps:.0} / {old_pps:.0} pkt/s");
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"sink_ingest\",\n  \"nodes\": {},\n  \"seed\": {},\n  \
         \"packets\": {},\n  \"warmup\": {},\n  \"wire_bytes\": {},\n  \
         \"encode_pkts_per_sec\": {:.1},\n  \"decode_pkts_per_sec\": {:.1},\n  \
         \"ingest\": [\n{}\n  ]\n}}\n",
        f.nodes,
        f.seed,
        workload.len(),
        warmup,
        bytes.len(),
        1.0 / encode_s,
        1.0 / decode_s,
        rows.join(",\n")
    );
    std::fs::write(&f.out, json).map_err(|e| format!("write {}: {e}", f.out))?;
    println!("bench: wrote {}", f.out);
    Ok(())
}

/// Builds the SUBSCRIBE command line a `tail` run sends.
fn subscribe_command(f: &Flags) -> Result<String, String> {
    if f.node.is_some() && f.path_filter.is_some() {
        return Err("--node and --path are mutually exclusive".into());
    }
    let mut cmd = String::from("SUBSCRIBE");
    if let Some(n) = f.node {
        cmd.push_str(&format!(" NODE {n}"));
    }
    if let Some((src, dst)) = f.path_filter {
        cmd.push_str(&format!(" PATH {src} {dst}"));
    }
    if let Some(b) = f.agg_bucket {
        cmd.push_str(&format!(" AGG {b}"));
    }
    if f.sub_replay {
        cmd.push_str(" REPLAY");
    }
    Ok(cmd)
}

/// Renders one push-stream line as a JSON object for `--jsonl`.
fn stream_line_json(l: &str) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut it = l.split_whitespace();
    match it.next() {
        Some("packet") => {
            let pid = it.next().unwrap_or("");
            let mut path = "[]".to_string();
            let mut times = "[]".to_string();
            let rest: Vec<&str> = it.collect();
            if let Some(p) = rest.iter().position(|&t| t == "path") {
                if let Some(raw) = rest.get(p + 1) {
                    path = format!("[{}]", raw.split('-').collect::<Vec<_>>().join(","));
                }
            }
            if let Some(p) = rest.iter().position(|&t| t == "times") {
                times = format!("[{}]", rest[p + 1..].join(","));
            }
            format!(
                "{{\"type\":\"packet\",\"pid\":\"{}\",\"path\":{path},\"times\":{times}}}",
                esc(pid)
            )
        }
        Some("bucket") => {
            let fields: Vec<&str> = l.split_whitespace().collect();
            let mut body = String::new();
            // "bucket <start> count <n> mean <m> ..." → key/value pairs.
            if let Some(start) = fields.get(1) {
                body.push_str(&format!("\"start_ms\":{start}"));
            }
            for pair in fields[2..].chunks(2) {
                if let [k, v] = pair {
                    body.push_str(&format!(",\"{}\":{v}", esc(k)));
                }
            }
            format!("{{\"type\":\"bucket\",{body}}}")
        }
        Some("lagged") => format!(
            "{{\"type\":\"lagged\",\"dropped\":{}}}",
            it.next().unwrap_or("0")
        ),
        Some("SHED") => format!("{{\"type\":\"shed\",\"line\":\"{}\"}}", esc(l)),
        _ => format!("{{\"type\":\"line\",\"line\":\"{}\"}}", esc(l)),
    }
}

fn tail(f: &Flags) -> Result<(), String> {
    let query = f.query.as_deref().ok_or("tail needs --query HOST:PORT")?;
    let cmd = subscribe_command(f)?;
    domo_obs::info!(
        target: "domo_sink",
        "tailing",
        query = query,
        command = cmd.as_str(),
    );
    let jsonl = f.jsonl;
    let report = tail_events(
        query,
        &cmd,
        &TailOptions {
            max_reconnects: f.reconnects,
            max_events: f.max_events,
            ..TailOptions::default()
        },
        |l| {
            if jsonl {
                println!("{}", stream_line_json(l));
            } else {
                println!("{l}");
            }
            true
        },
    )
    .map_err(|e| format!("tail: {e}"))?;
    domo_obs::info!(
        target: "domo_sink",
        "tail finished",
        events = report.events,
        duplicates = report.duplicates,
        lagged = report.lagged,
        reconnects = report.reconnects,
        shed = report.shed,
    );
    Ok(())
}

/// Exact quantile at rank `⌈q·n⌉` of an ascending-sorted slice — the
/// same rank convention `DelaySketch::quantile` estimates.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Parses the pid token out of a `packet <pid> …` line.
fn pid_of(line: &str) -> Option<&str> {
    line.split_whitespace().nth(1)
}

/// The live-query acceptance gate (check.sh gate 11); see the module
/// docs for what it asserts.
fn subsmoke(f: &Flags) -> Result<(), String> {
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    let total = trace.packets.len();
    if total < 4 {
        return Err("trace too small for a meaningful subscription test".into());
    }
    let half = total / 2;
    // Not every ingested packet reconstructs (retransmitted pids dedup,
    // estimation can fail), so the expected emission sets come from a
    // deterministic reference run of the same trace through an
    // identical in-process sink — the same bit-identity crashsmoke
    // already relies on.
    let distinct_half = trace.packets[..half]
        .iter()
        .map(|p| p.pid)
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;
    let distinct_total = trace
        .packets
        .iter()
        .map(|p| p.pid)
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;
    let ref_dir = std::env::temp_dir().join(format!("domo-subsmoke-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ref_dir);
    let reference = SinkService::start(SinkConfig {
        shards: f.shards,
        store: Some(StoreConfig::at(&ref_dir)),
        ..SinkConfig::default()
    });
    for p in &trace.packets[..half] {
        reference.ingest(p.clone());
    }
    reference.drain();
    let phase1: BTreeSet<String> = reference
        .range(f64::NEG_INFINITY, f64::INFINITY)
        .map_err(|e| format!("reference range: {e}"))?
        .iter()
        .map(|(pid, _)| pid.to_string())
        .collect();
    for p in &trace.packets[half..] {
        reference.ingest(p.clone());
    }
    reference.drain();
    let recs = reference
        .range(f64::NEG_INFINITY, f64::INFINITY)
        .map_err(|e| format!("reference range: {e}"))?;
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&ref_dir);
    let all_pids: BTreeSet<String> = recs.iter().map(|(pid, _)| pid.to_string()).collect();
    if phase1.is_empty() || all_pids.len() <= phase1.len() {
        return Err("reference run emitted too little to exercise both phases".into());
    }
    // The NODE filter target: the busiest forwarder (non-terminal path
    // position) of the emitted set, so the subset is nonempty.
    let mut per_node = std::collections::HashMap::new();
    for (_, rec) in &recs {
        let n = rec.path.len();
        for node in &rec.path[..n.saturating_sub(1)] {
            *per_node.entry(node.index() as u16).or_insert(0usize) += 1;
        }
    }
    let (filter_node, node_total) = per_node
        .into_iter()
        .max_by_key(|&(node, count)| (count, std::cmp::Reverse(node)))
        .ok_or("no forwarding node in the emitted set")?;
    let node_pids: BTreeSet<String> = recs
        .iter()
        .filter(|(_, rec)| {
            let n = rec.path.len();
            rec.path[..n.saturating_sub(1)]
                .iter()
                .any(|nd| nd.index() as u16 == filter_node)
        })
        .map(|(pid, _)| pid.to_string())
        .collect();

    let data_dir = std::env::temp_dir().join(format!("domo-subsmoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = SinkServer::bind(
        "127.0.0.1:0",
        "127.0.0.1:0",
        SinkConfig {
            shards: f.shards,
            store: Some(StoreConfig::at(&data_dir)),
            ..SinkConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let query_addr = server.query_addr();
    println!(
        "subsmoke: {} packets, {} reconstructions ({} through node {filter_node}), sink at {} / {}",
        total,
        all_pids.len(),
        node_pids.len(),
        server.ingest_addr(),
        query_addr
    );

    // Three live subscribers registered before anything is emitted:
    // B (ALL, follows to the end), C (NODE-filtered, follows to the
    // end), D (ALL, deliberately disconnects after the first half).
    let spawn_tail = |cmd: &'static str, max_events: u64| {
        std::thread::spawn(move || {
            let mut pids: Vec<String> = Vec::new();
            let report = tail_events(
                query_addr,
                cmd,
                &TailOptions {
                    max_events,
                    ..TailOptions::default()
                },
                |l| {
                    if let Some(pid) = pid_of(l) {
                        pids.push(pid.to_string());
                    }
                    true
                },
            );
            (report, pids)
        })
    };
    let sub_all = spawn_tail("SUBSCRIBE", all_pids.len() as u64);
    let node_cmd: &'static str =
        Box::leak(format!("SUBSCRIBE NODE {filter_node}").into_boxed_str());
    let sub_node = spawn_tail(node_cmd, node_pids.len() as u64);
    let sub_drop = spawn_tail("SUBSCRIBE", phase1.len() as u64);

    // Wait until all three are registered, or emissions could slip
    // out before the subscriptions exist.
    let mut q = QueryClient::connect(query_addr).map_err(|e| format!("query connect: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = parse_stats(&q.request("STATS").map_err(|e| format!("stats: {e}"))?);
        if stat(&stats, "subscribers") >= 3 {
            break;
        }
        if Instant::now() > deadline {
            return Err("subscribers never registered".into());
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Phase 1: half the trace, emitted by an explicit DRAIN, then a
    // forced CHECKPOINT *while the subscribers live* — exactly-once
    // must hold across it.
    replay_packets(
        server.ingest_addr(),
        &trace.packets[..half],
        &ReplayOptions::default(),
    )
    .map_err(|e| format!("phase-1 replay: {e}"))?;
    wait_ingested(&mut q, distinct_half)?;
    let drain = q.request("DRAIN").map_err(|e| format!("drain: {e}"))?;
    if drain.first().map(|l| l.starts_with("OK emitted ")) != Some(true) {
        return Err(format!("DRAIN did not report emissions: {drain:?}"));
    }
    let ckpt = q
        .request("CHECKPOINT")
        .map_err(|e| format!("checkpoint: {e}"))?;
    if ckpt.first().map(|l| l.starts_with("OK lsn ")) != Some(true) {
        return Err(format!("CHECKPOINT failed: {ckpt:?}"));
    }
    println!(
        "subsmoke: phase 1 drained ({} reconstructions) and checkpointed",
        phase1.len()
    );

    // D saw the first phase's emissions, then hung up mid-stream.
    let (drop_report, drop_pids) = sub_drop.join().map_err(|_| "drop subscriber panicked")?;
    let drop_report = drop_report.map_err(|e| format!("drop subscriber: {e}"))?;
    if drop_report.events != phase1.len() as u64 || drop_report.duplicates != 0 {
        return Err(format!(
            "pre-disconnect subscriber saw {} events ({} dup), want {}",
            drop_report.events,
            drop_report.duplicates,
            phase1.len()
        ));
    }

    // Phase 2: the rest of the trace, another DRAIN.
    replay_packets(
        server.ingest_addr(),
        &trace.packets,
        &ReplayOptions::default(),
    )
    .map_err(|e| format!("phase-2 replay: {e}"))?;
    wait_ingested(&mut q, distinct_total)?;
    q.request("DRAIN")
        .map_err(|e| format!("phase-2 drain: {e}"))?;

    // B: exactly the emitted set, no gaps, no duplicates, across the
    // checkpoint.
    let (all_report, got_all) = sub_all.join().map_err(|_| "ALL subscriber panicked")?;
    let all_report = all_report.map_err(|e| format!("ALL subscriber: {e}"))?;
    let got_all_set: BTreeSet<String> = got_all.iter().cloned().collect();
    if all_report.duplicates != 0 || got_all_set.len() != got_all.len() {
        return Err("ALL subscriber received duplicates".into());
    }
    if got_all_set != all_pids {
        return Err(format!(
            "ALL subscriber diverges: got {} pids, want {} (missing: {:?})",
            got_all_set.len(),
            all_pids.len(),
            all_pids
                .difference(&got_all_set)
                .take(3)
                .collect::<Vec<_>>()
        ));
    }
    println!(
        "subsmoke: live subscriber saw all {} emissions exactly once across CHECKPOINT",
        all_pids.len()
    );

    // C: exactly the matching subset.
    let (node_report, got_node) = sub_node.join().map_err(|_| "NODE subscriber panicked")?;
    let node_report = node_report.map_err(|e| format!("NODE subscriber: {e}"))?;
    let got_node_set: BTreeSet<String> = got_node.iter().cloned().collect();
    if node_report.duplicates != 0 || got_node_set != node_pids {
        return Err(format!(
            "NODE {filter_node} subscriber diverges: got {}, want {}",
            got_node_set.len(),
            node_pids.len()
        ));
    }
    println!(
        "subsmoke: NODE {filter_node} subscriber saw exactly its {} matching emissions",
        node_pids.len()
    );

    // D reconnects with REPLAY: the union of the pre-disconnect stream
    // and the replayed stream, deduplicated client-side, is exactly
    // the emitted set.
    let mut rejoined: BTreeSet<String> = drop_pids.into_iter().collect();
    let before = rejoined.len();
    let replay_report = tail_events(
        query_addr,
        "SUBSCRIBE REPLAY",
        &TailOptions {
            max_events: all_pids.len() as u64,
            ..TailOptions::default()
        },
        |l| {
            if let Some(pid) = pid_of(l) {
                rejoined.insert(pid.to_string());
            }
            true
        },
    )
    .map_err(|e| format!("reconnect tail: {e}"))?;
    if replay_report.events != all_pids.len() as u64 || rejoined != all_pids {
        return Err(format!(
            "reconnect not exactly-once: {} before + replay {} → {} unique, want {}",
            before,
            replay_report.events,
            rejoined.len(),
            all_pids.len()
        ));
    }
    println!("subsmoke: disconnect + REPLAY reconnect converged to exactly-once");

    // AGG vs offline exact: every sojourn sample of the filter node,
    // one giant bucket, quantiles within the documented bound.
    let range = q
        .request("RANGE -inf inf")
        .map_err(|e| format!("range: {e}"))?;
    let mut sojourns: Vec<f64> = Vec::new();
    for line in range.iter().filter(|l| l.starts_with("packet ")) {
        let fields: Vec<&str> = line.split_whitespace().collect();
        let (Some(pp), Some(tp)) = (
            fields.iter().position(|&t| t == "path"),
            fields.iter().position(|&t| t == "times"),
        ) else {
            continue;
        };
        let path: Vec<u16> = fields[pp + 1]
            .split('-')
            .filter_map(|t| t.parse().ok())
            .collect();
        let times: Vec<f64> = fields[tp + 1..]
            .iter()
            .filter_map(|t| t.parse().ok())
            .collect();
        for (i, w) in times.windows(2).enumerate() {
            if path.get(i) == Some(&filter_node) {
                sojourns.push((w[1] - w[0]).max(0.0));
            }
        }
    }
    sojourns.sort_by(f64::total_cmp);
    if sojourns.len() != node_total {
        return Err(format!(
            "offline sample count {} != expected {node_total}",
            sojourns.len()
        ));
    }
    let agg = q
        .request(&format!("AGG {filter_node} 0 100000000 100000000"))
        .map_err(|e| format!("agg: {e}"))?;
    let bucket = agg
        .iter()
        .find(|l| l.starts_with("bucket "))
        .ok_or_else(|| format!("AGG returned no bucket: {agg:?}"))?;
    let fields: Vec<&str> = bucket.split_whitespace().collect();
    let field = |name: &str| -> Result<f64, String> {
        fields
            .iter()
            .position(|&t| t == name)
            .and_then(|p| fields.get(p + 1))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("AGG bucket missing `{name}`: {bucket}"))
    };
    let count = field("count")? as usize;
    if count != sojourns.len() {
        return Err(format!("AGG count {count} != offline {}", sojourns.len()));
    }
    // Documented sketch bound (DelaySketch::relative_error_bound is
    // ≈5.93%, documented < 6.2%); the offline values carry the %.3f
    // wire rounding, hence the small absolute slack.
    let bound = 0.062;
    for (name, q_frac) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        let est = field(name)?;
        let exact = exact_quantile(&sojourns, q_frac);
        let tol = bound * exact.abs() + 1e-2;
        if (est - exact).abs() > tol {
            return Err(format!(
                "AGG {name} {est} vs exact {exact} exceeds the {bound} bound"
            ));
        }
    }
    let mean = field("mean")?;
    let offline_mean = sojourns.iter().sum::<f64>() / sojourns.len() as f64;
    if (mean - offline_mean).abs() > 1e-2 + 1e-3 * offline_mean.abs() {
        return Err(format!("AGG mean {mean} vs offline {offline_mean}"));
    }
    println!(
        "subsmoke: AGG over {} samples within the {:.1}% sketch bound (p50/p95/p99), mean exact",
        count,
        bound * 100.0
    );

    // Idle-subscriber cost: hold one quiet subscriber open, let the
    // adaptive poll back off to its ceiling, then require the wakeup
    // rate to stay flat — the old fixed 1 ms poll burned ~10 cycles a
    // second forever; the backoff settles under ~3/s.
    {
        use std::io::{BufRead, BufReader, Write as _};
        let stream = std::net::TcpStream::connect(query_addr)
            .map_err(|e| format!("idle subscriber connect: {e}"))?;
        let mut w = stream
            .try_clone()
            .map_err(|e| format!("idle subscriber clone: {e}"))?;
        writeln!(w, "SUBSCRIBE").map_err(|e| format!("idle subscribe: {e}"))?;
        let mut r = BufReader::new(&stream);
        let mut line = String::new();
        r.read_line(&mut line)
            .map_err(|e| format!("idle subscribe reply: {e}"))?;
        if !line.starts_with("OK subscribed") {
            return Err(format!("idle subscribe rejected: {line}"));
        }
        // Let the backoff ramp to its ceiling, then measure a window.
        std::thread::sleep(Duration::from_millis(1_500));
        let before = metric_value(&mut q, "domo_sink_sub_idle_wakeups_total")?;
        std::thread::sleep(Duration::from_millis(2_000));
        let after = metric_value(&mut q, "domo_sink_sub_idle_wakeups_total")?;
        let delta = after - before;
        if delta > 12.0 {
            return Err(format!(
                "idle subscriber woke {delta:.0} times in 2 s; the poll backoff is broken"
            ));
        }
        println!("subsmoke: idle subscriber cost {delta:.0} wakeups over 2 s");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("subsmoke: OK");
    Ok(())
}

/// Reads one float-valued metric out of a METRICS scrape.
fn metric_value(q: &mut QueryClient, name: &str) -> Result<f64, String> {
    let metrics = q.request("METRICS").map_err(|e| format!("metrics: {e}"))?;
    metrics
        .iter()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.trim().parse().ok()))
        .ok_or_else(|| format!("METRICS missing `{name}`"))
}

/// The high-concurrency acceptance gate (check.sh gate 12): holds
/// `--conns` simultaneous ingest connections open against one server,
/// partitions a unique-pid workload across them, and requires exact
/// `emitted + dropped == ingested` accounting with zero quarantines —
/// then re-binds with a tiny `--max-conns` cap and requires the excess
/// to be shed with the typed overcap counter, not an fd exhaustion.
fn connsoak(f: &Flags) -> Result<(), String> {
    use std::io::Write as _;

    let conns = f.conns.max(2);
    let trace = run_simulation(&NetworkConfig::small(f.nodes, f.seed));
    if trace.packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    let per_conn = (f.packets / conns).clamp(8, 512);
    let workload = synthesize_workload(&trace.packets, conns * per_conn);
    let total = conns * per_conn;
    let server = SinkServer::bind(
        "127.0.0.1:0",
        "127.0.0.1:0",
        SinkConfig {
            shards: f.shards,
            max_conns: conns + 64,
            ..SinkConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    println!(
        "connsoak: {} connections x {per_conn} packets against {}",
        conns,
        server.ingest_addr()
    );

    // Open every connection first — the registry must hold them all
    // live at once — then write each partition and keep every socket
    // open until the server has consumed the full workload.
    let mut streams = Vec::with_capacity(conns);
    for i in 0..conns {
        let s = std::net::TcpStream::connect(server.ingest_addr())
            .map_err(|e| format!("connect #{i}: {e}"))?;
        streams.push(s);
    }
    for (i, s) in streams.iter_mut().enumerate() {
        let part = &workload[i * per_conn..(i + 1) * per_conn];
        let frame = encode_packets(part).map_err(|e| format!("encode #{i}: {e}"))?;
        s.write_all(&frame)
            .map_err(|e| format!("write #{i}: {e}"))?;
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = server.service().stats();
        if s.ingested == total as u64 {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "soak ingest stalled at {}/{total} with {conns} live connections",
                s.ingested
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // Every connection is still open — the registry is carrying the
    // full set while the accounting below is checked.
    let mut q =
        QueryClient::connect(server.query_addr()).map_err(|e| format!("query connect: {e}"))?;
    let live = metric_value(&mut q, "domo_sink_connections{kind=\"ingest\"}")?;
    if (live as usize) < conns {
        return Err(format!(
            "only {live} ingest connections live, expected {conns}"
        ));
    }
    drop(streams);
    q.request("DRAIN").map_err(|e| format!("drain: {e}"))?;
    let stats = server.service().stats();
    if stats.quarantined != 0 {
        return Err(format!("soak quarantined {} packets", stats.quarantined));
    }
    if stats.emitted + stats.backpressure_dropped != stats.ingested
        || stats.ingested != total as u64
    {
        return Err(format!(
            "accounting drift under load: emitted {} + dropped {} != ingested {} (want {total})",
            stats.emitted, stats.backpressure_dropped, stats.ingested
        ));
    }
    println!(
        "connsoak: {} held, ingested {} = emitted {} + dropped {}",
        conns, stats.ingested, stats.emitted, stats.backpressure_dropped
    );
    server.shutdown();

    // Overcap phase: a tiny cap must shed the excess with the typed
    // counter while the capped set keeps working.
    let cap = 8usize;
    let open = 16usize;
    let server = SinkServer::bind(
        "127.0.0.1:0",
        "127.0.0.1:0",
        SinkConfig {
            shards: 1,
            max_conns: cap,
            ..SinkConfig::default()
        },
    )
    .map_err(|e| format!("bind capped: {e}"))?;
    let _held: Vec<std::net::TcpStream> = (0..open)
        .map(|i| {
            std::net::TcpStream::connect(server.ingest_addr())
                .map_err(|e| format!("capped connect #{i}: {e}"))
        })
        .collect::<Result<_, String>>()?;
    let mut q =
        QueryClient::connect(server.query_addr()).map_err(|e| format!("query connect: {e}"))?;
    let want_shed = (open - cap) as f64;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let shed = metric_value(&mut q, "domo_sink_shed_total{reason=\"overcap\"}").unwrap_or(0.0);
        if shed >= want_shed {
            println!("connsoak: cap {cap} shed {shed:.0} of {open} connections");
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "overcap shed never reached {want_shed} (at {shed:.0})"
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
    println!("connsoak: OK");
    Ok(())
}

/// Polls STATS until `ingested` reaches `want`.
fn wait_ingested(q: &mut QueryClient, want: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = parse_stats(&q.request("STATS").map_err(|e| format!("stats: {e}"))?);
        if stat(&stats, "ingested") >= want {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(format!("ingest stalled before {want}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: domo-sink <serve|replay|route|cluster|smoke|crashsmoke|bench|tail|subsmoke|connsoak> [flags] (see module docs)";
    let Some(command) = argv.first() else {
        domo_obs::error!(target: "domo_sink", "missing command", usage = usage);
        std::process::exit(2);
    };
    let result = match parse_flags(&argv[1..]) {
        Err(msg) => Err(msg),
        Ok(flags) => match command.as_str() {
            "serve" => serve(&flags),
            "replay" => replay(&flags),
            "route" => route(&flags),
            "cluster" => cluster(&flags),
            "smoke" => smoke(&flags),
            "crashsmoke" => crashsmoke(&flags),
            "bench" => bench(&flags),
            "tail" => tail(&flags),
            "subsmoke" => subsmoke(&flags),
            "connsoak" => connsoak(&flags),
            other => Err(format!("unknown command {other}\n{usage}")),
        },
    };
    if let Err(msg) = result {
        domo_obs::error!(target: "domo_sink", "command failed", error = msg);
        std::process::exit(1);
    }
}
