//! Out-of-process crash-recovery acceptance test: SIGKILL a durable
//! sink mid-ingest, restart it on the same data dir, and require the
//! recovered state to match an uninterrupted run exactly.
//!
//! The whole protocol (spawn → replay half → SIGKILL → respawn →
//! replay full → compare RANGE/PACKET against an in-process reference)
//! lives in the binary's `crashsmoke` command so `scripts/check.sh`
//! can run the identical gate; this test just drives it.

use std::process::Command;

#[test]
fn sigkill_mid_ingest_recovers_bit_identically() {
    let out = Command::new(env!("CARGO_BIN_EXE_domo-sink"))
        .args(["crashsmoke", "--nodes", "9", "--seed", "13"])
        .env("DOMO_LOG", "off")
        .output()
        .expect("run crashsmoke");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "crashsmoke failed\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(
        stdout.contains("crashsmoke: OK"),
        "missing OK marker\n{stdout}"
    );
    assert!(
        stdout.contains("recovered 94/94 packets bit-identically")
            || stdout.contains("bit-identically"),
        "missing recovery line\n{stdout}"
    );
}
