//! Fast, non-cryptographic hashing for hot-path identity sets.
//!
//! The std `HashMap`/`HashSet` default to SipHash-1-3, which is
//! DoS-resistant but costs ~10× what a multiplicative mix does on the
//! small fixed-width keys this workspace deduplicates by (packet ids
//! are six bytes). The sink's ingest path performs three set
//! operations per packet; at millions of packets per second the
//! hasher is a first-order term.
//!
//! [`FastHasher`] is a word-at-a-time rotate-xor-multiply mix in the
//! style of the `fxhash` family (itself lifted from Firefox). It is
//! *not* flooding-resistant: use it only for keys an attacker cannot
//! choose freely, or where a degraded bucket spread costs throughput
//! rather than correctness — both true of the sink's dedup sets,
//! whose keys are already bounded by the sanitizer.
//!
//! # Examples
//!
//! ```
//! use domo_util::hash::FastHashSet;
//!
//! let mut seen: FastHashSet<u64> = FastHashSet::default();
//! assert!(seen.insert(7));
//! assert!(!seen.insert(7));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier with a balanced bit pattern (the golden-ratio
/// constant used across fxhash implementations).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A word-at-a-time rotate-xor-multiply hasher.
///
/// Every written word folds into the state as
/// `state = (state.rotl(5) ^ word) * SEED`; byte slices fold one byte
/// per round, so fixed-width integer keys (the intended use) take one
/// round per field.
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fold(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.fold(n as u64);
        self.fold((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `HashSet` keyed by [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// `HashMap` keyed by [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_spread() {
        // Sanity: sequential small keys must not collide into a
        // handful of finish() values (a classic multiplicative-hash
        // failure when the multiplier is even).
        let mut outs: HashSet<u64> = HashSet::new();
        for k in 0u64..10_000 {
            let mut h = FastHasher::default();
            h.write_u64(k);
            outs.insert(h.finish());
        }
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn set_round_trips() {
        let mut s: FastHashSet<(u16, u32)> = FastHashSet::default();
        for origin in 0u16..50 {
            for seq in 0u32..50 {
                assert!(s.insert((origin, seq)));
            }
        }
        assert_eq!(s.len(), 2_500);
        assert!(s.contains(&(7, 7)));
        assert!(!s.insert((7, 7)));
    }

    #[test]
    fn write_is_order_sensitive() {
        let mut a = FastHasher::default();
        a.write_u16(1);
        a.write_u32(2);
        let mut b = FastHasher::default();
        b.write_u16(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
