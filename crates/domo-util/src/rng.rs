//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately does not depend on the `rand` crate: the
//! simulator's results must be bit-reproducible from a seed across crate
//! upgrades, so we implement the well-known splitmix64 (for seeding) and
//! xoshiro256++ (for the stream) generators directly. Both are public
//! domain algorithms by Blackman & Vigna and are tested against the
//! reference vectors in this module's unit tests.

use std::ops::Range;

/// The splitmix64 generator, used to expand a 64-bit seed into the
/// 256-bit state required by [`Xoshiro256pp`].
///
/// Splitmix64 passes BigCrush on its own and is the recommended seeding
/// procedure for the xoshiro family. It is exposed publicly because the
/// simulator also uses it to derive independent per-node seeds from a
/// scenario seed.
///
/// # Examples
///
/// ```
/// use domo_util::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(7);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256++ generator: fast, small, and statistically strong.
///
/// This is the workhorse RNG for every stochastic component of the
/// repository (link loss, MAC backoff, traffic jitter, workload
/// generation). Construct it with [`Xoshiro256pp::seed_from_u64`] for a
/// convenient single-integer seed, or [`Xoshiro256pp::from_state`] to
/// resume an exact stream.
///
/// # Examples
///
/// ```
/// use domo_util::rng::Xoshiro256pp;
///
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let x = rng.f64(); // uniform in [0, 1)
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator by expanding `seed` through splitmix64.
    ///
    /// Two generators created from different seeds produce streams that
    /// are, for all simulation purposes, independent.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is the only invalid state; splitmix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s == [0; 4] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Creates a generator from an explicit 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is all zeros, which is not a valid xoshiro state.
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(state != [0; 4], "xoshiro256++ state must be non-zero");
        Self { s: state }
    }

    /// Returns the raw 256-bit state, e.g. for checkpointing a stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Derives a new, independent generator from this one.
    ///
    /// Used to hand each simulated node its own stream so that adding or
    /// removing nodes does not perturb the randomness seen by others.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `u64` in `range` (half-open).
    ///
    /// Uses Lemire-style rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(
            range.start < range.end,
            "range_u64 requires a non-empty range"
        );
        let span = range.end - range.start;
        // Rejection sampling over the top bits; loop terminates with
        // probability 1 and in practice after ~1 iteration.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }

    /// Returns a uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, range: Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Returns a uniform `f64` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn range_f64(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "range_f64 requires a non-empty finite range"
        );
        range.start + self.f64() * (range.end - range.start)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples a standard normal via the Box–Muller transform.
    pub fn normal_std(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a normal with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.normal_std()
    }

    /// Samples an exponential with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        -self.f64().max(f64::MIN_POSITIVE).ln() / lambda
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Returns a reference to a uniformly chosen element, or `None` if
    /// `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(0..slice.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir sampling),
    /// returned in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.range_usize(0..i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference outputs for seed 1234567 from the canonical C code.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn splitmix64_seed_zero_progresses() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(99);
        let mut b = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Cross-checked against the canonical xoshiro256++ C code seeded
        // with splitmix64(0): state = [e220a8397b1dcdaf, 6e789e6aa1b965f4,
        // 06c45d188009454f, f88bb8a8724c81ec].
        let mut rng = Xoshiro256pp::from_state([
            0xe220a8397b1dcdaf,
            0x6e789e6aa1b965f4,
            0x06c45d188009454f,
            0xf88bb8a8724c81ec,
        ]);
        assert_eq!(rng.next_u64(), 0x53175d61490b23df);
        assert_eq!(rng.next_u64(), 0x61da6f3dc380d507);
        assert_eq!(rng.next_u64(), 0x5c0fdf91ec9a7bfc);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn xoshiro_rejects_zero_state() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "f64 out of range: {x}");
        }
    }

    #[test]
    fn range_u64_covers_and_stays_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range_u64(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values should appear in 1000 draws"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn range_u64_rejects_empty_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let _ = rng.range_u64(5..5);
    }

    #[test]
    fn bernoulli_matches_probability_roughly() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move something"
        );
    }

    #[test]
    fn sample_indices_distinct_sorted_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let idx = rng.sample_indices(50, 10);
        assert_eq!(idx.len(), 10);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(rng.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn fork_produces_diverging_streams() {
        let mut parent = Xoshiro256pp::seed_from_u64(11);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..10).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
