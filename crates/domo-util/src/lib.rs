//! Shared utilities for the Domo reproduction.
//!
//! This crate hosts the three foundations every other crate in the
//! workspace builds on:
//!
//! * [`hash`] — a fast non-cryptographic hasher ([`hash::FastHasher`])
//!   for hot-path identity sets keyed by small fixed-width ids.
//! * [`rng`] — a deterministic, dependency-free pseudo-random number
//!   generator (splitmix64 seeding + xoshiro256++ core) so that every
//!   simulation and experiment in the repository is bit-reproducible from
//!   a seed, independent of external crate versions.
//! * [`stats`] — descriptive statistics (mean, variance, percentiles,
//!   empirical CDFs) and the paper's *average displacement* sequence
//!   metric used to score MessageTracing-style order reconstruction.
//! * [`time`] — strongly-typed simulated time ([`SimTime`]) and duration
//!   ([`SimDuration`]) in microsecond ticks, matching the paper's
//!   millisecond-precision measurements with headroom.
//!
//! # Examples
//!
//! ```
//! use domo_util::rng::Xoshiro256pp;
//! use domo_util::time::SimDuration;
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let jitter = SimDuration::from_millis(rng.range_u64(0..100));
//! assert!(jitter.as_millis() < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod rng;
pub mod running;
pub mod stats;
pub mod time;

pub use rng::Xoshiro256pp;
pub use running::RunningStats;
pub use time::{SimDuration, SimTime};
