//! Streaming (single-pass) statistics.
//!
//! The online monitoring path cannot buffer every sojourn sample to call
//! [`crate::stats::Summary`] at the end; [`RunningStats`] maintains
//! count/mean/variance/extrema in O(1) memory with Welford's numerically
//! stable update.

/// Welford-style running mean/variance with extrema.
///
/// # Examples
///
/// ```
/// use domo_util::running::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Raw `(count, mean, m2, min, max)` decomposition of a
/// [`RunningStats`] accumulator, as produced by
/// [`RunningStats::to_parts`] and consumed by
/// [`RunningStats::from_parts`].
pub type RunningParts = (u64, f64, f64, f64, f64);

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite (a NaN would silently poison
    /// every later statistic).
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "running stats require finite samples");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`0.0` for fewer than two samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance (`0.0` for fewer than two).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Decomposes the accumulator into its raw fields
    /// `(count, mean, m2, min, max)` for serialization
    /// (checkpointing). Round-trips exactly through
    /// [`RunningStats::from_parts`].
    pub fn to_parts(&self) -> RunningParts {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`RunningStats::to_parts`] output.
    /// Fields are taken as-is; an empty accumulator (`count == 0`)
    /// normalizes to [`RunningStats::new`] so `min`/`max` sentinels
    /// stay consistent.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return Self::new();
        }
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_statistics() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let s: RunningStats = data.iter().copied().collect();
        let mean = crate::stats::mean(&data).unwrap();
        let var = crate::stats::variance(&data).unwrap();
        assert_eq!(s.count(), 1000);
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), data.iter().copied().reduce(f64::min));
        assert_eq!(s.max(), data.iter().copied().reduce(f64::max));
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a: RunningStats = a_data.iter().copied().collect();
        let b: RunningStats = b_data.iter().copied().collect();
        a.merge(&b);
        let all: RunningStats = a_data.iter().chain(&b_data).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn degenerate_cases() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        let one: RunningStats = [5.0].iter().copied().collect();
        assert_eq!(one.population_variance(), 0.0);
        assert_eq!(one.sample_variance(), 0.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn parts_round_trip_exactly() {
        let s: RunningStats = [3.5, -1.25, 8.0, 0.5].iter().copied().collect();
        let (count, mean, m2, min, max) = s.to_parts();
        let back = RunningStats::from_parts(count, mean, m2, min, max);
        assert_eq!(back, s, "round trip must be bit-exact");
        // Empty stays canonical through the round trip.
        let (c, m, q, lo, hi) = RunningStats::new().to_parts();
        let empty = RunningStats::from_parts(c, m, q, lo, hi);
        assert_eq!(empty, RunningStats::new());
        assert_eq!(empty.min(), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut s = RunningStats::new();
        s.push(f64::NAN);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation test: huge mean, tiny spread.
        // 99 samples = 33 full 0,1,2 cycles.
        let base = 1e9;
        let s: RunningStats = (0..99).map(|i| base + (i % 3) as f64).collect();
        assert!((s.mean() - (base + 1.0)).abs() < 1e-3);
        // True population variance of 0,1,2 repeated is 2/3.
        assert!((s.population_variance() - 2.0 / 3.0).abs() < 1e-3);
    }
}
