//! Descriptive statistics and the paper's sequence-displacement metric.
//!
//! The evaluation section of the Domo paper reports three families of
//! numbers, all of which bottom out in this module:
//!
//! * average reconstruction error (mean of absolute errors),
//! * CDFs of errors / bound widths (empirical distribution functions),
//! * the *average displacement* between a reconstructed event order and
//!   the ground-truth order (Domo §VI.A), used to compare against
//!   MessageTracing.

use std::collections::HashMap;
use std::hash::Hash;

/// Returns the arithmetic mean of `values`, or `None` if empty.
///
/// # Examples
///
/// ```
/// assert_eq!(domo_util::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(domo_util::stats::mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Returns the population variance of `values`, or `None` if empty.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Returns the population standard deviation of `values`, or `None` if
/// empty.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` using linear
/// interpolation between order statistics, or `None` if empty.
/// NaN values sort last (IEEE total order), so a NaN-polluted sample
/// skews the upper quantiles rather than panicking.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Returns the median of `values`, or `None` if empty.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// A five-number-plus-mean summary of a sample.
///
/// # Examples
///
/// ```
/// let s = domo_util::stats::Summary::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.mean, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary, or `None` if `values` is empty.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        Some(Self {
            count: values.len(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            p25: quantile(values, 0.25)?,
            median: median(values)?,
            p75: quantile(values, 0.75)?,
            p90: quantile(values, 0.90)?,
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(values)?,
            std_dev: std_dev(values)?,
        })
    }
}

/// An empirical cumulative distribution function.
///
/// Used by every figure in the paper's evaluation that plots a CDF
/// (Figures 7 and 8) and by the textual experiment reports.
///
/// # Examples
///
/// ```
/// let cdf = domo_util::stats::Ecdf::from_values(&[1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
/// assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. NaN values sort last (IEEE total
    /// order).
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of samples in the ECDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Returns `P[X ≤ x]` for the empirical distribution.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Returns the `q`-quantile of the sample, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile(&self.sorted, q)
    }

    /// Samples the CDF curve at `points` evenly spaced x-values spanning
    /// the data range, returning `(x, P[X ≤ x])` pairs — the series a
    /// plotting frontend would consume.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

/// Computes the *average displacement* between a ground-truth sequence
/// and a reconstructed sequence of the same elements (Domo §VI.A).
///
/// Each element's displacement is the absolute difference between its
/// position in `truth` and its position in `reconstructed`; the metric is
/// the mean over all elements. The paper's example: truth
/// `(a, b, c, d, e)` vs. reconstruction `(b, a, e, d, c)` has displacement
/// `(1+1+2+0+2)/5 = 1.2`.
///
/// Elements present in only one of the sequences are ignored (this models
/// packet loss: an event that was never reconstructed cannot be scored).
/// Returns `None` when the sequences share no elements.
///
/// # Panics
///
/// Panics if either sequence contains duplicate elements.
///
/// # Examples
///
/// ```
/// let truth = ['a', 'b', 'c', 'd', 'e'];
/// let recon = ['b', 'a', 'e', 'd', 'c'];
/// let d = domo_util::stats::average_displacement(&truth, &recon).unwrap();
/// assert!((d - 1.2).abs() < 1e-12);
/// ```
pub fn average_displacement<T: Eq + Hash>(truth: &[T], reconstructed: &[T]) -> Option<f64> {
    let mut truth_pos: HashMap<&T, usize> = HashMap::with_capacity(truth.len());
    for (i, t) in truth.iter().enumerate() {
        assert!(
            truth_pos.insert(t, i).is_none(),
            "duplicate element in truth sequence"
        );
    }
    let mut seen: HashMap<&T, usize> = HashMap::with_capacity(reconstructed.len());
    let mut total = 0usize;
    let mut count = 0usize;
    // Positions must be compared within the common subsequence: rank both
    // sequences over the shared elements only, otherwise missing elements
    // shift every later position and inflate the metric.
    let common: Vec<&T> = reconstructed
        .iter()
        .filter(|e| truth_pos.contains_key(e))
        .collect();
    for (i, e) in common.iter().enumerate() {
        assert!(
            seen.insert(e, i).is_none(),
            "duplicate element in reconstructed sequence"
        );
    }
    let mut truth_rank = 0usize;
    for t in truth {
        if let Some(&recon_rank) = seen.get(t) {
            total += truth_rank.abs_diff(recon_rank);
            truth_rank += 1;
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(total as f64 / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev_basics() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(variance(&v), Some(4.0));
        assert_eq!(std_dev(&v), Some(2.0));
    }

    #[test]
    fn empty_sample_yields_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(median(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "q in [0, 1]")]
    fn quantile_rejects_out_of_range_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_fields_are_consistent() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_values(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p90);
    }

    #[test]
    fn ecdf_step_behaviour() {
        let cdf = Ecdf::from_values(&[1.0, 2.0, 2.0, 10.0]);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(9.99), 0.75);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(f64::INFINITY), 1.0);
    }

    #[test]
    fn ecdf_curve_spans_range_and_is_monotone() {
        let cdf = Ecdf::from_values(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 1.0);
        assert_eq!(curve[10].0, 5.0);
        assert_eq!(curve[10].1, 1.0);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn ecdf_degenerate_cases() {
        assert!(Ecdf::from_values(&[]).curve(5).is_empty());
        let single = Ecdf::from_values(&[7.0]);
        assert_eq!(single.curve(5), vec![(7.0, 1.0)]);
        assert!(Ecdf::from_values(&[]).is_empty());
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn displacement_paper_example() {
        let truth = ['a', 'b', 'c', 'd', 'e'];
        let recon = ['b', 'a', 'e', 'd', 'c'];
        let d = average_displacement(&truth, &recon).unwrap();
        assert!((d - 1.2).abs() < 1e-12);
    }

    #[test]
    fn displacement_identity_is_zero() {
        let seq = [1, 2, 3, 4, 5];
        assert_eq!(average_displacement(&seq, &seq), Some(0.0));
    }

    #[test]
    fn displacement_ignores_missing_elements() {
        // Reconstruction missed 'c' entirely: score the common elements.
        let truth = ['a', 'b', 'c', 'd'];
        let recon = ['b', 'a', 'd'];
        // Common ranks — truth: a=0, b=1, d=2; recon: b=0, a=1, d=2.
        let d = average_displacement(&truth, &recon).unwrap();
        assert!((d - (1.0 + 1.0 + 0.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn displacement_disjoint_is_none() {
        assert_eq!(average_displacement(&[1, 2], &[3, 4]), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn displacement_rejects_duplicates() {
        let _ = average_displacement(&[1, 1], &[1]);
    }
}
