//! Strongly-typed simulated time.
//!
//! All timing quantities in the simulator and the reconstruction pipeline
//! are expressed in microsecond ticks. The paper measures delays with
//! 1 ms precision and stores the 2-byte sum-of-delays at 1 ms resolution;
//! we keep a µs-resolution global clock internally so that quantization
//! to the on-air format is an explicit, testable step rather than an
//! accident of representation.
//!
//! [`SimTime`] is a point on the simulation's global timeline;
//! [`SimDuration`] is a difference of such points. The two types are kept
//! distinct so that, e.g., adding two absolute times is a compile error.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use domo_util::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use domo_util::time::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 3_500);
/// assert_eq!(d.as_millis_f64(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch as a float (lossless for the
    /// simulation horizons used here).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: returns [`SimDuration`] zero when `other`
    /// is later than `self`.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction of a duration: `None` on underflow.
    pub fn checked_sub_dur(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration of `s` whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond and clamping negatives to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((ms * 1_000.0).round() as u64)
        }
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Quantizes to the on-air 1 ms resolution used by the 2-byte
    /// sum-of-delays field, rounding half up.
    pub fn quantize_millis(self) -> u64 {
        (self.0 + 500) / 1_000
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic_between_times_and_durations() {
        let t0 = SimTime::from_millis(10);
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1, SimTime::from_millis(15));
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(t1 - SimDuration::from_millis(15), SimTime::ZERO);

        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 250);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(1);
        assert_eq!(a + b, SimDuration::from_millis(4));
        assert_eq!(a - b, SimDuration::from_millis(2));
        assert_eq!(a * 2, SimDuration::from_millis(6));
        assert_eq!(a / 3, SimDuration::from_millis(1));
        let mut c = a;
        c -= b;
        assert_eq!(c, SimDuration::from_millis(2));
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(5));
    }

    #[test]
    fn saturating_ops_do_not_underflow() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_sub(late), SimDuration::ZERO);
        assert_eq!(late.saturating_sub(early), SimDuration::from_millis(1));
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn checked_sub_dur_detects_underflow() {
        let t = SimTime::from_millis(1);
        assert_eq!(t.checked_sub_dur(SimDuration::from_millis(2)), None);
        assert_eq!(
            t.checked_sub_dur(SimDuration::from_micros(1_000)),
            Some(SimTime::ZERO)
        );
    }

    #[test]
    fn quantize_millis_rounds_half_up() {
        assert_eq!(SimDuration::from_micros(499).quantize_millis(), 0);
        assert_eq!(SimDuration::from_micros(500).quantize_millis(), 1);
        assert_eq!(SimDuration::from_micros(1_499).quantize_millis(), 1);
        assert_eq!(SimDuration::from_micros(1_500).quantize_millis(), 2);
    }

    #[test]
    fn from_millis_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(1.2344).as_micros(), 1_234);
        assert_eq!(SimDuration::from_millis_f64(1.2346).as_micros(), 1_235);
    }

    #[test]
    fn display_uses_milliseconds() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.250ms");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
