//! The discrete-event simulation engine.
//!
//! The engine models what Domo's node-side implementation (paper §V)
//! sits on top of: a CSMA MAC with a FIFO send queue and link-layer
//! retransmissions, SFD-interrupt timestamping, per-node drifting clocks,
//! CTP-style routing with periodic beacons, and periodic application
//! traffic toward a single sink.
//!
//! ## Timing model
//!
//! A packet's arrival time at a node is the **frame-completion instant**
//! of the transmission that delivered it — the moment TOSSIM (the
//! paper's simulator) fires the receive event and the moment the packet
//! can physically enter the FIFO send queue. The node delay at hop `i`
//! is `D_i = (frame completion at hop i+1) − (frame completion at hop
//! i)`, so the paper's identity `t_{i+1} = t_i + D_i` holds *exactly*,
//! and — because a packet's arrival instant equals its queue-insertion
//! instant — packets leave every node in arrival order, which is the
//! FIFO property Domo's constraints are built on. (Timestamping at the
//! SFD interrupt instead, as §V describes for real hardware, shifts
//! every timestamp one frame-time earlier and admits a within-frame race
//! between reception and local generation; the frame-completion
//! convention is the one the paper's own evaluation platform uses.)
//!
//! ## Algorithm 1 (sum-of-delays recording)
//!
//! The accumulator adds the measured sojourn of every packet the node
//! transmits, using the node's drifting local clock, and the 2-byte
//! `S(p)` field is written (1 ms quantized) when a locally-generated
//! packet is transmitted. One deliberate deviation from the paper's
//! listing: the accumulator resets only when the local packet's
//! transmission is *acknowledged*, so the sink-side candidate-set
//! constraints remain sound when local packets are lost (DESIGN.md,
//! "Substitutions").

use crate::config::NetworkConfig;
use crate::link::LinkModel;
use crate::routing::Routing;
use crate::trace::{CollectedPacket, LogEvent, LogEventKind, NetworkTrace, SimStats};
use crate::types::{NodeId, PacketId};
use domo_util::rng::Xoshiro256pp;
use domo_util::time::{SimDuration, SimTime};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// On-air time of a data frame (≈ 48 bytes at 250 kb/s, preamble
/// included). The frame-completion instant at the receiver is
/// `SFD-TX + FRAME_TIME`.
const FRAME_TIME: SimDuration = SimDuration::from_micros(1600);

/// ACK turnaround the sender waits through after a frame before its next
/// action (retry backoff or serving the next packet).
const ACK_WAIT: SimDuration = SimDuration::from_micros(800);

/// A packet as it travels through the network.
#[derive(Debug, Clone)]
struct PacketRecord {
    pid: PacketId,
    gen_time: SimTime,
    /// Arrival time at every node visited so far; `[0]` is the source
    /// with its generation time.
    hops: Vec<(NodeId, SimTime)>,
    /// The on-air S(p) field, written by the source at transmission.
    s_field_ms: u16,
    /// Accumulated end-to-end delay field (µs, measured by the drifting
    /// node clocks).
    e2e_accum_us: u64,
}

/// A packet sitting in (or at the head of) a node's FIFO send queue.
#[derive(Debug, Clone)]
struct QueuedPacket {
    rec: PacketRecord,
    /// Frame-completion arrival at this node (generation time at the
    /// source).
    arrival: SimTime,
    attempts: u32,
}

#[derive(Debug, Default)]
struct NodeState {
    queue: VecDeque<QueuedPacket>,
    /// True while a TxAttempt/TxResult chain is pending for the head.
    serving: bool,
    /// Sum-of-delays accumulator, µs on the node's local clock.
    acc_us: f64,
    /// Fractional clock drift (e.g. `25e-6` = 25 ppm fast).
    drift: f64,
    next_seq: u32,
    log: Vec<LogEvent>,
    /// Copies already accepted, keyed by (packet, hop count) like a THL
    /// dedup cache: a *retransmitted* copy repeats the hop count and is
    /// suppressed; a copy revisiting through a transient routing loop
    /// arrives with a grown hop count and is processed normally (and
    /// eventually TTL-dropped).
    seen: std::collections::HashSet<(PacketId, usize)>,
}

#[derive(Debug)]
enum Event {
    /// A node generates a local packet.
    Generate { node: usize },
    /// The head of a node's queue hits the air (SFD-TX instant).
    TxAttempt { node: usize },
    /// The attempt's outcome is known (frame + ACK round trip elapsed).
    TxResult {
        node: usize,
        receiver: usize,
        data_arrived: bool,
        /// Frame-completion instant = receiver-side arrival time.
        delivery_time: SimTime,
        packet: Box<PacketRecord>,
    },
    /// Periodic routing beacon.
    Beacon,
    /// An environmental event: nearby nodes burst extra packets.
    Environment,
    /// One extra packet of a node's burst.
    BurstPacket { node: usize },
}

#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The simulator. Use [`run_simulation`] unless you need stepping.
pub struct Simulator {
    config: NetworkConfig,
    links: LinkModel,
    routing: Routing,
    rng: Xoshiro256pp,
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled>,
    nodes: Vec<NodeState>,
    collected: Vec<CollectedPacket>,
    truth: HashMap<PacketId, Vec<SimTime>>,
    stats: SimStats,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending_events", &self.heap.len())
            .field("delivered", &self.collected.len())
            .finish()
    }
}

/// Runs a complete simulation and returns its trace.
///
/// # Panics
///
/// Panics if the configuration fails [`NetworkConfig::validate`].
///
/// # Examples
///
/// ```
/// use domo_net::{run_simulation, NetworkConfig};
///
/// let trace = run_simulation(&NetworkConfig::small(16, 7));
/// assert!(trace.stats.delivered > 0);
/// assert!(trace.packets.iter().all(|p| p.path.last().unwrap().is_sink()));
/// ```
pub fn run_simulation(config: &NetworkConfig) -> NetworkTrace {
    let mut sim = Simulator::new(config.clone());
    sim.run_to_completion();
    let trace = sim.into_trace();
    match &config.faults {
        Some(f) if !f.is_quiet() => crate::faults::inject_faults(&trace, f).0,
        _ => trace,
    }
}

impl Simulator {
    /// Builds a simulator with routes pre-converged (the paper's traces
    /// come from an already-running network).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: NetworkConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid network configuration: {e}");
        }
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
        let links = LinkModel::build(&config, &mut rng);
        let mut routing = Routing::with_protocol(
            config.num_nodes,
            config.etx_hysteresis,
            config.etx_noise_sigma,
            config.routing_protocol,
        );
        // Warm up routing so traffic starts on a converged tree.
        for _ in 0..5 {
            routing.beacon(&links, SimTime::ZERO, &mut rng);
        }

        let mut nodes: Vec<NodeState> = (0..config.num_nodes)
            .map(|_| NodeState {
                drift: rng.range_f64(-config.clock_drift_ppm..config.clock_drift_ppm) * 1e-6,
                ..NodeState::default()
            })
            .collect();
        // The sink's clock is the reference.
        nodes[0].drift = 0.0;

        let mut sim = Self {
            config,
            links,
            routing,
            rng,
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            nodes,
            collected: Vec::new(),
            truth: HashMap::new(),
            stats: SimStats::default(),
        };

        // First generation per source, spread over one period.
        let period_us = sim.config.traffic_period.as_micros();
        for node in 1..sim.config.num_nodes {
            let offset = SimDuration::from_micros(sim.rng.range_u64(0..period_us.max(1)));
            sim.schedule(SimTime::ZERO + offset, Event::Generate { node });
        }
        let beacon_at = SimTime::ZERO + sim.config.beacon_interval;
        sim.schedule(beacon_at, Event::Beacon);
        if let Some(bursts) = sim.config.event_bursts {
            let first = SimTime::ZERO
                + SimDuration::from_millis_f64(
                    sim.rng
                        .exponential(1.0 / bursts.mean_interval.as_millis_f64()),
                );
            sim.schedule(first, Event::Environment);
        }
        sim
    }

    fn schedule(&mut self, time: SimTime, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
    }

    /// Drains every pending event (traffic stops at `duration`; in-flight
    /// packets finish afterwards).
    pub fn run_to_completion(&mut self) {
        while let Some(s) = self.heap.pop() {
            self.now = s.time;
            self.dispatch(s.event);
        }
    }

    /// Consumes the simulator and assembles the trace.
    pub fn into_trace(self) -> NetworkTrace {
        let mut packets = self.collected;
        packets.sort_by_key(|p| (p.sink_arrival, p.pid));
        NetworkTrace {
            num_nodes: self.config.num_nodes,
            seed: self.config.seed,
            packets,
            ground_truth: self.truth,
            node_logs: self.nodes.into_iter().map(|n| n.log).collect(),
            positions: self.links.positions().to_vec(),
            stats: self.stats,
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Generate { node } => self.on_generate(node),
            Event::TxAttempt { node } => self.on_tx_attempt(node),
            Event::TxResult {
                node,
                receiver,
                data_arrived,
                delivery_time,
                packet,
            } => self.on_tx_result(node, receiver, data_arrived, delivery_time, *packet),
            Event::Beacon => self.on_beacon(),
            Event::Environment => self.on_environment_event(),
            Event::BurstPacket { node } => self.generate_packet(node),
        }
    }

    fn on_environment_event(&mut self) {
        let Some(bursts) = self.config.event_bursts else {
            return;
        };
        // Random epicenter; nearby non-sink nodes react with a burst.
        let side = self.config.area_side();
        let epicenter = crate::types::Position {
            x: self.rng.range_f64(0.0..side),
            y: self.rng.range_f64(0.0..side),
        };
        for node in 1..self.config.num_nodes {
            let pos = self.links.position(NodeId::new(node as u16));
            if pos.distance(epicenter) <= bursts.radius {
                for k in 0..bursts.packets {
                    let at = self.now + bursts.spacing * u64::from(k + 1);
                    self.schedule(at, Event::BurstPacket { node });
                }
            }
        }
        let next = self.now
            + SimDuration::from_millis_f64(
                self.rng
                    .exponential(1.0 / bursts.mean_interval.as_millis_f64()),
            );
        if next <= SimTime::ZERO + self.config.duration {
            self.schedule(next, Event::Environment);
        }
    }

    fn on_beacon(&mut self) {
        self.routing.beacon(&self.links, self.now, &mut self.rng);
        let next = self.now + self.config.beacon_interval;
        if next <= SimTime::ZERO + self.config.duration {
            self.schedule(next, Event::Beacon);
        }
    }

    /// Creates a local packet at `node` and enqueues it (or counts the
    /// queue drop). Shared by periodic traffic and event bursts.
    fn generate_packet(&mut self, node: usize) {
        self.stats.generated += 1;
        let nid = NodeId::new(node as u16);
        let seq = self.nodes[node].next_seq;
        self.nodes[node].next_seq += 1;
        let rec = PacketRecord {
            pid: PacketId::new(nid, seq),
            gen_time: self.now,
            hops: vec![(nid, self.now)],
            s_field_ms: 0,
            e2e_accum_us: 0,
        };
        if self.nodes[node].queue.len() >= self.config.queue_capacity {
            self.stats.dropped_queue += 1;
        } else {
            self.enqueue_in_arrival_order(
                node,
                QueuedPacket {
                    rec,
                    arrival: self.now,
                    attempts: 0,
                },
            );
            self.maybe_start_service(node);
        }
    }

    fn on_generate(&mut self, node: usize) {
        self.generate_packet(node);

        // Next generation, jittered, while within the traffic horizon.
        let jitter_us = self.config.traffic_jitter.as_micros();
        let base = self.config.traffic_period.as_micros();
        let delta = if jitter_us > 0 {
            let j = self.rng.range_u64(0..2 * jitter_us + 1) as i64 - jitter_us as i64;
            (base as i64 + j).max(100_000) as u64
        } else {
            base
        };
        let next = self.now + SimDuration::from_micros(delta);
        if next <= SimTime::ZERO + self.config.duration {
            self.schedule(next, Event::Generate { node });
        }
    }

    /// Appends a packet to a node's FIFO send queue. Arrival instants
    /// equal insertion instants in this engine (frame-completion
    /// semantics), so `push_back` *is* arrival order.
    fn enqueue_in_arrival_order(&mut self, node: usize, qp: QueuedPacket) {
        debug_assert!(self.nodes[node]
            .queue
            .back()
            .is_none_or(|last| last.arrival <= qp.arrival));
        self.nodes[node].queue.push_back(qp);
    }

    fn maybe_start_service(&mut self, node: usize) {
        if !self.nodes[node].serving && !self.nodes[node].queue.is_empty() {
            self.nodes[node].serving = true;
            let backoff = self.sample_backoff(self.config.backoff);
            let at = self.now + backoff;
            self.schedule(at, Event::TxAttempt { node });
        }
    }

    fn sample_backoff(&mut self, range: (SimDuration, SimDuration)) -> SimDuration {
        let (lo, hi) = (range.0.as_micros(), range.1.as_micros());
        SimDuration::from_micros(if hi > lo {
            self.rng.range_u64(lo..hi + 1)
        } else {
            lo
        })
    }

    /// Measured sojourn of the head packet at `node`, in local-clock µs.
    fn measured_delay_us(&self, node: usize, arrival: SimTime, departure: SimTime) -> f64 {
        let true_us = departure.saturating_sub(arrival).as_micros() as f64;
        true_us * (1.0 + self.nodes[node].drift)
    }

    fn on_tx_attempt(&mut self, node: usize) {
        debug_assert!(self.nodes[node].serving);
        let Some(head) = self.nodes[node].queue.front() else {
            self.nodes[node].serving = false;
            return;
        };

        // Hop-budget guard (routing loops during re-convergence).
        if head.rec.hops.len() >= self.config.max_hops {
            if let Some(dropped) = self.nodes[node].queue.pop_front() {
                self.stats.dropped_ttl += 1;
                self.commit_forwarded_if_needed(node, &dropped, self.now);
            }
            self.continue_service(node);
            return;
        }

        let Some(parent) = self.routing.parent(NodeId::new(node as u16)) else {
            if let Some(dropped) = self.nodes[node].queue.pop_front() {
                self.stats.dropped_no_route += 1;
                self.commit_forwarded_if_needed(node, &dropped, self.now);
            }
            self.continue_service(node);
            return;
        };

        // The packet is delivered (and this hop's sojourn ends) at frame
        // completion, after any LPL wake-up preamble: under low-power
        // listening the receiver wakes at a uniformly random phase of
        // its cycle and the sender strobes until then.
        let wake_penalty = match self.config.mac_mode {
            crate::config::MacMode::AlwaysOn => SimDuration::ZERO,
            crate::config::MacMode::LowPowerListening { wake_interval } => {
                SimDuration::from_micros(self.rng.range_u64(0..wake_interval.as_micros().max(1)))
            }
        };
        let delivery_time = self.now + wake_penalty + FRAME_TIME;
        let Some(head) = self.nodes[node].queue.front() else {
            self.nodes[node].serving = false;
            return;
        };
        let own_delay_us = self.measured_delay_us(node, head.arrival, delivery_time);
        let mut on_air = head.rec.clone();
        let is_local = on_air.pid.origin.index() == node;
        if is_local {
            // Algorithm 1 line 10: S(p) = accumulator + own first delay,
            // quantized into the 2-byte field.
            let s_ms = SimDuration::from_micros(
                (self.nodes[node].acc_us + own_delay_us).round().max(0.0) as u64,
            )
            .quantize_millis();
            on_air.s_field_ms = s_ms.min(u16::MAX as u64) as u16;
        }
        on_air.e2e_accum_us = on_air
            .e2e_accum_us
            .saturating_add(own_delay_us.round().max(0.0) as u64);

        let data_arrived = {
            let prr = self.links.prr(NodeId::new(node as u16), parent, self.now);
            self.rng.bernoulli(prr)
        };
        self.schedule(
            delivery_time,
            Event::TxResult {
                node,
                receiver: parent.index(),
                data_arrived,
                delivery_time,
                packet: Box::new(on_air),
            },
        );
    }

    /// On drop of a forwarded packet, its sojourn still entered the
    /// accumulator (the radio transmitted it; Algorithm 1 adds at
    /// SFD-TX). Local packets do not commit — their delay would have
    /// lived in their own S field.
    fn commit_forwarded_if_needed(&mut self, node: usize, dropped: &QueuedPacket, t2: SimTime) {
        if dropped.rec.pid.origin.index() != node {
            let d = self.measured_delay_us(node, dropped.arrival, t2);
            self.nodes[node].acc_us += d;
        }
    }

    fn continue_service(&mut self, node: usize) {
        if self.nodes[node].queue.is_empty() {
            self.nodes[node].serving = false;
        } else {
            let backoff = self.sample_backoff(self.config.backoff);
            let at = self.now + ACK_WAIT + backoff;
            self.schedule(at, Event::TxAttempt { node });
        }
    }

    fn on_tx_result(
        &mut self,
        node: usize,
        receiver: usize,
        data_arrived: bool,
        delivery_time: SimTime,
        packet: PacketRecord,
    ) {
        let receiver_is_sink = receiver == 0;
        let receiver_has_room =
            receiver_is_sink || self.nodes[receiver].queue.len() < self.config.queue_capacity;
        // A copy the receiver already accepted (its ACK was lost) is
        // recognized and re-ACKed without reprocessing. Forwarders key
        // on hop count (THL) so loop revisits still flow; the sink keys
        // on the packet alone — a delivery is final.
        let dedup_key = if receiver_is_sink {
            (packet.pid, 0)
        } else {
            (packet.pid, packet.hops.len())
        };
        let duplicate = data_arrived && self.nodes[receiver].seen.contains(&dedup_key);
        let accepted_now = data_arrived && receiver_has_room && !duplicate;
        let ack_ok = duplicate
            || (accepted_now
                && (self.config.ack_reliability >= 1.0
                    || self.rng.bernoulli(self.config.ack_reliability)));

        if accepted_now {
            self.nodes[receiver].seen.insert(dedup_key);
            // ---- Receiver side: process the first accepted copy. ----
            if receiver_is_sink {
                let mut times: Vec<SimTime> = packet.hops.iter().map(|&(_, t)| t).collect();
                times.push(delivery_time);
                let mut path: Vec<NodeId> = packet.hops.iter().map(|&(n, _)| n).collect();
                path.push(NodeId::SINK);
                self.nodes[0].log.push(LogEvent {
                    kind: LogEventKind::Receive,
                    pid: packet.pid,
                });
                self.truth.insert(packet.pid, times);
                self.collected.push(CollectedPacket {
                    pid: packet.pid,
                    gen_time: packet.gen_time,
                    sink_arrival: delivery_time,
                    path,
                    sum_of_delays_ms: packet.s_field_ms,
                    e2e_ms: SimDuration::from_micros(packet.e2e_accum_us)
                        .quantize_millis()
                        .min(u16::MAX as u64) as u16,
                });
                self.stats.delivered += 1;
            } else {
                let mut rec = packet;
                rec.hops.push((NodeId::new(receiver as u16), delivery_time));
                self.nodes[receiver].log.push(LogEvent {
                    kind: LogEventKind::Receive,
                    pid: rec.pid,
                });
                self.enqueue_in_arrival_order(
                    receiver,
                    QueuedPacket {
                        rec,
                        arrival: delivery_time,
                        attempts: 0,
                    },
                );
                self.maybe_start_service(receiver);
            }
        }

        if ack_ok {
            // ---- Sender side: the packet leaves this node. ----
            let Some(sent) = self.nodes[node].queue.pop_front() else {
                self.continue_service(node);
                return;
            };
            let is_local = sent.rec.pid.origin.index() == node;
            let delay_us = self.measured_delay_us(node, sent.arrival, delivery_time);
            if is_local {
                // ACKed local packet: its own delay lives in its S field;
                // the accumulator restarts (see module docs).
                self.nodes[node].acc_us = 0.0;
            } else {
                self.nodes[node].acc_us += delay_us;
            }
            self.nodes[node].log.push(LogEvent {
                kind: LogEventKind::Send,
                pid: sent.rec.pid,
            });
            self.continue_service(node);
        } else {
            // Failed attempt (data lost, receiver full, or ACK lost):
            // retransmit or give up.
            let give_up = match self.nodes[node].queue.front_mut() {
                Some(head) => {
                    head.attempts += 1;
                    head.attempts > self.config.max_retries
                }
                None => true,
            };
            if give_up {
                if let Some(dropped) = self.nodes[node].queue.pop_front() {
                    self.stats.dropped_retx += 1;
                    self.commit_forwarded_if_needed(node, &dropped, delivery_time);
                    // The radio did transmit the final copy; the local log
                    // records the send even though no ACK arrived.
                    self.nodes[node].log.push(LogEvent {
                        kind: LogEventKind::Send,
                        pid: dropped.rec.pid,
                    });
                }
                self.continue_service(node);
            } else {
                let backoff = self.sample_backoff(self.config.congestion_backoff);
                let at = self.now + ACK_WAIT + backoff;
                self.schedule(at, Event::TxAttempt { node });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> NetworkTrace {
        run_simulation(&NetworkConfig::small(25, seed))
    }

    #[test]
    fn most_packets_are_delivered() {
        let t = small_trace(1);
        assert!(t.stats.generated > 0);
        assert!(
            t.stats.delivery_ratio() > 0.85,
            "delivery ratio {} too low",
            t.stats.delivery_ratio()
        );
    }

    #[test]
    fn paths_run_from_source_to_sink() {
        let t = small_trace(2);
        for p in &t.packets {
            assert_eq!(p.path[0], p.pid.origin);
            assert!(p.path.last().unwrap().is_sink());
            assert!(p.path_len() >= 2);
            // No node repeats within a path (loops are TTL-dropped).
            let mut seen = std::collections::HashSet::new();
            for n in &p.path {
                assert!(seen.insert(n), "path of {} revisits {n}", p.pid);
            }
        }
    }

    #[test]
    fn ground_truth_times_are_strictly_increasing() {
        let t = small_trace(3);
        assert!(!t.packets.is_empty());
        for p in &t.packets {
            let times = t.truth(p.pid).expect("truth recorded");
            assert_eq!(times.len(), p.path_len());
            assert_eq!(times[0], p.gen_time);
            assert_eq!(*times.last().unwrap(), p.sink_arrival);
            for w in times.windows(2) {
                assert!(w[0] < w[1], "non-monotone hop times for {}", p.pid);
            }
        }
    }

    #[test]
    fn fifo_invariant_holds_at_every_node() {
        // The paper's FIFO constraint: packets leave a node in arrival
        // order. Verify on ground truth for every (node, packet) pair.
        let t = small_trace(4);
        // node -> Vec<(arrival, departure)>
        let mut per_node: HashMap<usize, Vec<(SimTime, SimTime)>> = HashMap::new();
        for p in &t.packets {
            let times = t.truth(p.pid).unwrap();
            for i in 0..p.path.len() - 1 {
                per_node
                    .entry(p.path[i].index())
                    .or_default()
                    .push((times[i], times[i + 1]));
            }
        }
        for (node, mut pairs) in per_node {
            pairs.sort_by_key(|&(a, _)| a);
            for w in pairs.windows(2) {
                assert!(
                    w[0].1 <= w[1].1,
                    "FIFO violated at node {node}: arrivals {:?}/{:?} depart {:?}/{:?}",
                    w[0].0,
                    w[1].0,
                    w[0].1,
                    w[1].1
                );
            }
        }
    }

    #[test]
    fn e2e_field_approximates_true_delay() {
        let t = small_trace(5);
        for p in &t.packets {
            let true_ms = p.e2e_delay().as_millis_f64();
            let recorded = p.e2e_ms as f64;
            // Drift ≤ 30 ppm and ms quantization per hop: stay within
            // 1 ms per hop plus rounding.
            assert!(
                (true_ms - recorded).abs() <= p.path_len() as f64 + 1.0,
                "e2e field {recorded} vs true {true_ms} for {}",
                p.pid
            );
        }
    }

    #[test]
    fn sum_of_delays_at_least_first_hop_delay() {
        let t = small_trace(6);
        let mut checked = 0;
        for p in &t.packets {
            let times = t.truth(p.pid).unwrap();
            if p.path_len() < 2 {
                continue;
            }
            let own_ms = (times[1] - times[0]).as_millis_f64();
            // S(p) includes the packet's own first-hop sojourn.
            assert!(
                f64::from(p.sum_of_delays_ms) >= own_ms - 1.5,
                "S(p) = {} < own delay {} for {}",
                p.sum_of_delays_ms,
                own_ms,
                p.pid
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = small_trace(7);
        let b = small_trace(7);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.stats, b.stats);
        let c = small_trace(8);
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn node_logs_record_forwarding() {
        let t = small_trace(9);
        // The sink logs only receives; sources log sends.
        assert!(t.node_logs[0]
            .iter()
            .all(|e| e.kind == LogEventKind::Receive));
        let sends: usize = t.node_logs[1..]
            .iter()
            .map(|log| log.iter().filter(|e| e.kind == LogEventKind::Send).count())
            .sum();
        assert!(sends >= t.stats.delivered);
    }

    #[test]
    fn tiny_queue_overflows_under_load() {
        let mut cfg = NetworkConfig::small(36, 10);
        cfg.queue_capacity = 1;
        cfg.traffic_period = SimDuration::from_millis(500);
        cfg.traffic_jitter = SimDuration::from_millis(100);
        let t = run_simulation(&cfg);
        assert!(
            t.stats.dropped_queue > 0,
            "expected queue drops with capacity 1 under heavy traffic"
        );
    }

    #[test]
    fn multihop_paths_exist() {
        let t = small_trace(11);
        let max_hops = t.packets.iter().map(|p| p.path_len()).max().unwrap();
        assert!(
            max_hops >= 3,
            "a 5×5 grid must produce multi-hop paths (max {max_hops})"
        );
        assert!(t.num_unknowns() > 0);
    }

    #[test]
    fn lost_acks_cause_duplicates_but_not_corruption() {
        let mut cfg = NetworkConfig::small(25, 16);
        cfg.ack_reliability = 0.85;
        let t = run_simulation(&cfg);
        assert!(t.stats.delivered > 50);
        // Every delivered packet appears exactly once.
        let mut pids: Vec<PacketId> = t.packets.iter().map(|p| p.pid).collect();
        let total = pids.len();
        pids.sort();
        pids.dedup();
        assert_eq!(pids.len(), total, "duplicate deliveries must be suppressed");
        // Ground truth stays monotone despite retransmission skew.
        for p in &t.packets {
            let times = t.truth(p.pid).unwrap();
            assert!(times.windows(2).all(|w| w[0] < w[1]));
        }
        // S(p) still covers the first-hop sojourn (the sender's commit
        // can only be *later* than the receiver-recorded handoff, so S
        // never undershoots its own packet's delay).
        for p in &t.packets {
            if p.path_len() < 2 {
                continue;
            }
            let times = t.truth(p.pid).unwrap();
            let own = (times[1] - times[0]).as_millis_f64();
            assert!(f64::from(p.sum_of_delays_ms) >= own - 1.5);
        }
    }

    #[test]
    fn event_bursts_inject_extra_traffic() {
        let base = NetworkConfig::small(25, 15);
        let mut bursty = base.clone();
        bursty.event_bursts = Some(crate::config::EventBursts {
            mean_interval: SimDuration::from_secs(10),
            radius: 30.0,
            packets: 3,
            spacing: SimDuration::from_millis(200),
        });
        let quiet = run_simulation(&base);
        let noisy = run_simulation(&bursty);
        assert!(
            noisy.stats.generated > quiet.stats.generated + 10,
            "bursts must add packets: {} vs {}",
            noisy.stats.generated,
            quiet.stats.generated
        );
        // Burst packets are ordinary packets: accounting still balances.
        let s = noisy.stats;
        assert_eq!(
            s.generated,
            s.delivered + s.dropped_queue + s.dropped_retx + s.dropped_no_route + s.dropped_ttl
        );
        // FIFO invariant survives the bursts.
        let mut per_node: HashMap<usize, Vec<(SimTime, SimTime)>> = HashMap::new();
        for p in &noisy.packets {
            let times = noisy.truth(p.pid).unwrap();
            for i in 0..p.path.len() - 1 {
                per_node
                    .entry(p.path[i].index())
                    .or_default()
                    .push((times[i], times[i + 1]));
            }
        }
        for (_, mut pairs) in per_node {
            pairs.sort_by_key(|&(a, _)| a);
            assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn lpl_mode_inflates_per_hop_delays() {
        let base = NetworkConfig::small(16, 13);
        let mut lpl_cfg = base.clone();
        lpl_cfg.mac_mode = crate::config::MacMode::LowPowerListening {
            wake_interval: SimDuration::from_millis(100),
        };
        let on = run_simulation(&base);
        let lpl = run_simulation(&lpl_cfg);
        let mean_hop = |t: &NetworkTrace| {
            let mut ds = Vec::new();
            for p in &t.packets {
                let times = t.truth(p.pid).unwrap();
                for w in times.windows(2) {
                    ds.push((w[1] - w[0]).as_millis_f64());
                }
            }
            ds.iter().sum::<f64>() / ds.len().max(1) as f64
        };
        let (d_on, d_lpl) = (mean_hop(&on), mean_hop(&lpl));
        assert!(
            d_lpl > d_on + 20.0,
            "LPL should add ~50ms mean wake-up latency: {d_on:.1} vs {d_lpl:.1}"
        );
        assert!(lpl.stats.delivered > 0);
        // Timing identities must hold under LPL too.
        for p in &lpl.packets {
            let times = lpl.truth(p.pid).unwrap();
            assert!(times.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn lqi_routing_builds_working_trees() {
        let mut cfg = NetworkConfig::small(25, 14);
        cfg.routing_protocol = crate::config::RoutingProtocol::LqiMultihop { min_prr: 0.5 };
        let t = run_simulation(&cfg);
        assert!(
            t.stats.delivery_ratio() > 0.7,
            "LQI routing should still deliver: {}",
            t.stats.delivery_ratio()
        );
        for p in &t.packets {
            assert!(p.path.last().unwrap().is_sink());
        }
    }

    #[test]
    fn traffic_horizon_is_respected() {
        let cfg = NetworkConfig::small(16, 12);
        let t = run_simulation(&cfg);
        for p in &t.packets {
            assert!(p.gen_time <= SimTime::ZERO + cfg.duration);
        }
    }
}
