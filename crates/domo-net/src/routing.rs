//! CTP-style collection routing.
//!
//! Every node maintains an ETX estimate to the sink and a parent pointer.
//! At each beacon interval the routing layer re-estimates link ETX from
//! the instantaneous PRR (with estimation noise, mimicking the EWMA link
//! estimator of CTP) and relaxes routes for a few sweeps. A node only
//! switches parent when the improvement beats the hysteresis threshold,
//! which is what keeps real CTP networks from flapping — and what makes
//! paths change *sometimes*, producing the routing dynamics Domo's
//! evaluation exercises.

use crate::config::RoutingProtocol;
use crate::link::LinkModel;
use crate::types::NodeId;
use domo_util::rng::Xoshiro256pp;
use domo_util::time::SimTime;

/// Per-node routing state.
#[derive(Debug, Clone)]
pub struct Routing {
    parent: Vec<Option<NodeId>>,
    etx: Vec<f64>,
    hysteresis: f64,
    noise_sigma: f64,
    protocol: RoutingProtocol,
    /// Number of parent switches observed since the start (diagnostic).
    pub parent_changes: usize,
}

/// Number of Bellman-Ford sweeps per beacon round. Three sweeps let
/// routing information propagate a few hops per beacon, mimicking the
/// asynchronous convergence of real beaconing.
const SWEEPS_PER_BEACON: usize = 3;

impl Routing {
    /// Creates routing state with no routes (all costs infinite except
    /// the sink), using the CTP-style ETX metric.
    pub fn new(num_nodes: usize, hysteresis: f64, noise_sigma: f64) -> Self {
        Self::with_protocol(num_nodes, hysteresis, noise_sigma, RoutingProtocol::EtxCtp)
    }

    /// Creates routing state for a specific protocol.
    pub fn with_protocol(
        num_nodes: usize,
        hysteresis: f64,
        noise_sigma: f64,
        protocol: RoutingProtocol,
    ) -> Self {
        let mut etx = vec![f64::INFINITY; num_nodes];
        if !etx.is_empty() {
            etx[0] = 0.0;
        }
        Self {
            parent: vec![None; num_nodes],
            etx,
            hysteresis,
            noise_sigma,
            protocol,
            parent_changes: 0,
        }
    }

    /// Current parent of `node` (`None` when the node has no route).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Current ETX-to-sink of `node` (`f64::INFINITY` when unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn etx(&self, node: NodeId) -> f64 {
        self.etx[node.index()]
    }

    /// Fraction of non-sink nodes that currently have a route.
    pub fn route_coverage(&self) -> f64 {
        let n = self.parent.len();
        if n <= 1 {
            return 1.0;
        }
        let routed = self.parent.iter().skip(1).filter(|p| p.is_some()).count();
        routed as f64 / (n - 1) as f64
    }

    /// One beacon round: re-estimate link ETX at time `t` and relax.
    pub fn beacon(&mut self, links: &LinkModel, t: SimTime, rng: &mut Xoshiro256pp) {
        let n = self.etx.len();
        // Noisy link-cost snapshot for this round. Estimating once per
        // round (not per sweep) matches a beacon-driven estimator.
        let protocol = self.protocol;
        let noise_sigma = self.noise_sigma;
        let link_etx = |from: NodeId, to: NodeId, rng: &mut Xoshiro256pp| -> f64 {
            let prr = links.prr(from, to, t);
            if prr <= 0.0 {
                return f64::INFINITY;
            }
            let noisy = (prr * (1.0 + rng.normal(0.0, noise_sigma))).clamp(0.05, 1.0);
            match protocol {
                // CTP: expected transmissions.
                RoutingProtocol::EtxCtp => 1.0 / noisy,
                // MultihopLQI: hop count over links above the quality
                // threshold, with a small quality term as tie-break.
                RoutingProtocol::LqiMultihop { min_prr } => {
                    if noisy < min_prr {
                        f64::INFINITY
                    } else {
                        1.0 + 0.5 * (1.0 - noisy)
                    }
                }
            }
        };

        // Cache the noisy estimates so both sweep directions agree.
        let mut est: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (u, est_u) in est.iter_mut().enumerate().skip(1) {
            let nu = NodeId::new(u as u16);
            for &v in links.neighbors(nu) {
                est_u.push((v.index(), link_etx(nu, v, rng)));
            }
        }

        for _ in 0..SWEEPS_PER_BEACON {
            let mut changed = false;
            for (u, est_u) in est.iter().enumerate().skip(1) {
                let mut best: Option<(f64, usize)> = None;
                for &(v, le) in est_u {
                    let cand = self.etx[v] + le;
                    if cand.is_finite() && best.is_none_or(|(b, _)| cand < b) {
                        best = Some((cand, v));
                    }
                }
                let Some((best_etx, best_parent)) = best else {
                    continue;
                };
                let current = self.parent[u];
                // Refresh own ETX through the current parent if still valid.
                let current_etx = current
                    .and_then(|p| {
                        est_u
                            .iter()
                            .find(|&&(v, _)| v == p.index())
                            .map(|&(v, le)| self.etx[v] + le)
                    })
                    .unwrap_or(f64::INFINITY);

                if best_etx + self.hysteresis < current_etx
                    || current.is_none()
                    || !current_etx.is_finite()
                {
                    if current != Some(NodeId::new(best_parent as u16)) {
                        if current.is_some() {
                            self.parent_changes += 1;
                        }
                        self.parent[u] = Some(NodeId::new(best_parent as u16));
                    }
                    if (self.etx[u] - best_etx).abs() > 1e-12 {
                        self.etx[u] = best_etx;
                        changed = true;
                    }
                } else if current_etx.is_finite() && (self.etx[u] - current_etx).abs() > 1e-12 {
                    self.etx[u] = current_etx;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    fn setup(seed: u64, n: usize) -> (LinkModel, Routing, Xoshiro256pp) {
        let cfg = NetworkConfig::small(n, seed);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let links = LinkModel::build(&cfg, &mut rng);
        let routing = Routing::new(n, cfg.etx_hysteresis, cfg.etx_noise_sigma);
        (links, routing, rng)
    }

    #[test]
    fn beacons_build_full_coverage_on_connected_network() {
        let (links, mut routing, mut rng) = setup(1, 25);
        assert!(links.is_connected());
        for round in 0..5 {
            routing.beacon(&links, SimTime::from_secs(round * 10), &mut rng);
        }
        assert_eq!(routing.route_coverage(), 1.0);
    }

    #[test]
    fn etx_decreases_toward_sink_along_parents() {
        let (links, mut routing, mut rng) = setup(2, 25);
        for round in 0..5 {
            routing.beacon(&links, SimTime::from_secs(round * 10), &mut rng);
        }
        for u in 1..25u16 {
            let node = NodeId::new(u);
            let p = routing.parent(node).expect("routed");
            assert!(
                routing.etx(p) < routing.etx(node),
                "parent {p} of {node} must be closer to the sink"
            );
        }
    }

    #[test]
    fn parent_chains_terminate_at_sink() {
        let (links, mut routing, mut rng) = setup(3, 36);
        for round in 0..6 {
            routing.beacon(&links, SimTime::from_secs(round * 10), &mut rng);
        }
        for u in 1..36u16 {
            let mut cur = NodeId::new(u);
            let mut hops = 0;
            while !cur.is_sink() {
                cur = routing.parent(cur).expect("routed");
                hops += 1;
                assert!(hops <= 36, "routing loop detected from node {u}");
            }
        }
    }

    #[test]
    fn link_dynamics_cause_some_parent_changes() {
        let (links, mut routing, mut rng) = setup(4, 49);
        for round in 0..30 {
            routing.beacon(&links, SimTime::from_secs(round * 10), &mut rng);
        }
        assert!(
            routing.parent_changes > 0,
            "temporal link variation should trigger at least one switch"
        );
    }

    #[test]
    fn sink_has_no_parent_and_zero_etx() {
        let (links, mut routing, mut rng) = setup(5, 16);
        routing.beacon(&links, SimTime::ZERO, &mut rng);
        assert_eq!(routing.parent(NodeId::SINK), None);
        assert_eq!(routing.etx(NodeId::SINK), 0.0);
    }

    #[test]
    fn empty_and_singleton_networks() {
        let r = Routing::new(1, 0.5, 0.1);
        assert_eq!(r.route_coverage(), 1.0);
    }
}
