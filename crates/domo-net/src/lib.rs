//! A discrete-event wireless ad-hoc network simulator producing the
//! traces Domo reconstructs.
//!
//! The Domo paper evaluates on TOSSIM with TinyOS/CTP; this crate plays
//! the same role as that stack for the reproduction: it simulates a
//! multi-hop collection network — CSMA MAC with FIFO send queues and
//! retransmissions, SFD-instant timestamping, per-node clock drift,
//! CTP-style ETX routing with periodic beacons and parent switches,
//! lossy time-varying links — and runs the paper's node-side Algorithm 1
//! (sum-of-delays recording) on every simulated node.
//!
//! The output, a [`NetworkTrace`], contains exactly what a real sink
//! would know (per-packet path, generation time, sink arrival time,
//! 2-byte `S(p)` field) plus evaluation-only ground truth (per-hop
//! arrival times) and per-node logs for the MessageTracing baseline.
//!
//! # Examples
//!
//! ```
//! use domo_net::{run_simulation, NetworkConfig};
//!
//! let trace = run_simulation(&NetworkConfig::small(16, 1));
//! println!("delivered {} packets, {} unknowns to reconstruct",
//!          trace.stats.delivered, trace.num_unknowns());
//! assert!(trace.stats.delivery_ratio() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod faults;
pub mod link;
pub mod routing;
pub mod topology;
pub mod trace;
pub mod trace_io;
pub mod types;

pub use config::{EventBursts, MacMode, NetworkConfig, Placement, RoutingProtocol};
pub use engine::{run_simulation, Simulator};
pub use faults::{inject_faults, FaultConfig, FaultReport};
pub use link::LinkModel;
pub use routing::Routing;
pub use topology::TraceProfile;
pub use trace::{CollectedPacket, LogEvent, LogEventKind, NetworkTrace, SimStats};
pub use types::{NodeId, PacketId, Position};
