//! Post-hoc fault injection on collected traces.
//!
//! Real deployments hand the sink a trace that is *worse* than anything
//! the simulator produces on its own: serial-forwarder glitches duplicate
//! and reorder records, the 2-byte `S(p)` and e2e fields saturate or get
//! corrupted on the air, node reboots reset the sum-of-delays
//! accumulator mid-flight, time-sync hiccups jump reconstructed
//! generation times, and path reconstruction can truncate a route. This
//! module injects exactly those pathologies into a finished
//! [`NetworkTrace`], deterministically from a seed, so the
//! reconstruction pipeline can be driven through every failure mode it
//! must degrade gracefully under.
//!
//! Injection is purely sink-side: ground truth, node logs and simulator
//! statistics are untouched, mirroring how the paper's own loss
//! experiment (§VI.B) removes packets from the *original* trace.
//!
//! # Examples
//!
//! ```
//! use domo_net::{run_simulation, FaultConfig, NetworkConfig};
//!
//! let clean = run_simulation(&NetworkConfig::small(16, 7));
//! let faults = FaultConfig {
//!     drop_rate: 0.1,
//!     duplicate_rate: 0.05,
//!     ..FaultConfig::default()
//! };
//! let (faulty, report) = domo_net::inject_faults(&clean, &faults);
//! assert!(faulty.packets.len() <= clean.packets.len() + report.duplicated);
//! ```

use crate::trace::{CollectedPacket, NetworkTrace};
use domo_util::rng::Xoshiro256pp;
use domo_util::time::SimDuration;

/// Fault-injection knobs, all expressed as independent per-packet
/// probabilities (0 disables a fault class).
///
/// The default configuration injects nothing, so
/// `NetworkConfig { faults: Some(FaultConfig::default()), .. }` is
/// byte-identical to a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a delivered record is lost uniformly at random
    /// (on top of the simulator's own link losses).
    pub drop_rate: f64,
    /// Probability that a *burst* of consecutive losses starts at a
    /// record; the burst removes up to [`FaultConfig::burst_len`]
    /// records in a row (sink outage / serial-forwarder gap).
    pub burst_drop_rate: f64,
    /// Length of each drop burst.
    pub burst_len: usize,
    /// Probability that a record is duplicated in the trace with the
    /// same `(origin, seq)` id.
    pub duplicate_rate: f64,
    /// Probability that a record is swapped with its successor,
    /// breaking the sink-arrival sort order downstream code expects.
    pub reorder_rate: f64,
    /// Probability that a record's `S(p)` field is replaced by a
    /// uniformly random u16 (on-air corruption that slipped the CRC).
    pub corrupt_sum_rate: f64,
    /// Probability that a record's 2-byte `S(p)` *and* e2e fields pin to
    /// `u16::MAX` (accumulator overflow on a congested path).
    pub saturate_rate: f64,
    /// Probability that a record's generation time jumps forward
    /// (time-sync glitch); a jump past the sink arrival yields a
    /// causality inversion the sanitizer must catch.
    pub clock_jump_rate: f64,
    /// Magnitude bound of each clock jump (ms); the actual jump is
    /// uniform in `[1, clock_jump_ms]`.
    pub clock_jump_ms: u64,
    /// Probability that a record's origin node "rebooted" while the
    /// packet was queued: the sum-of-delays accumulator resets, so the
    /// recorded `S(p)` only covers a random suffix of the true sum.
    pub reboot_rate: f64,
    /// Probability that a record's reconstructed path is truncated to a
    /// strict prefix (no longer ending at the sink).
    pub truncate_path_rate: f64,
    /// Seed of the injection RNG; independent of the simulation seed so
    /// the same trace can be stressed many ways.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_rate: 0.0,
            burst_drop_rate: 0.0,
            burst_len: 8,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_sum_rate: 0.0,
            saturate_rate: 0.0,
            clock_jump_rate: 0.0,
            clock_jump_ms: 5_000,
            reboot_rate: 0.0,
            truncate_path_rate: 0.0,
            seed: 0xD0_50,
        }
    }
}

impl FaultConfig {
    /// A configuration that exercises *every* fault class at the given
    /// per-class rate — the adversarial setting robustness tests use.
    pub fn all(rate: f64, seed: u64) -> Self {
        Self {
            drop_rate: rate,
            burst_drop_rate: rate / 4.0,
            burst_len: 4,
            duplicate_rate: rate,
            reorder_rate: rate,
            corrupt_sum_rate: rate,
            saturate_rate: rate,
            clock_jump_rate: rate,
            clock_jump_ms: 5_000,
            reboot_rate: rate,
            truncate_path_rate: rate,
            seed,
        }
    }

    /// True when every rate is zero (injection is the identity).
    pub fn is_quiet(&self) -> bool {
        self.drop_rate == 0.0
            && self.burst_drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.corrupt_sum_rate == 0.0
            && self.saturate_rate == 0.0
            && self.clock_jump_rate == 0.0
            && self.reboot_rate == 0.0
            && self.truncate_path_rate == 0.0
    }

    /// Validates that every rate is a probability and structural knobs
    /// are non-degenerate.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("drop_rate", self.drop_rate),
            ("burst_drop_rate", self.burst_drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("reorder_rate", self.reorder_rate),
            ("corrupt_sum_rate", self.corrupt_sum_rate),
            ("saturate_rate", self.saturate_rate),
            ("clock_jump_rate", self.clock_jump_rate),
            ("reboot_rate", self.reboot_rate),
            ("truncate_path_rate", self.truncate_path_rate),
        ];
        for (name, r) in rates {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("fault {name} must be in [0, 1], got {r}"));
            }
        }
        if self.burst_drop_rate > 0.0 && self.burst_len == 0 {
            return Err("burst_len must be positive when bursts are enabled".into());
        }
        if self.clock_jump_rate > 0.0 && self.clock_jump_ms == 0 {
            return Err("clock_jump_ms must be positive when jumps are enabled".into());
        }
        Ok(())
    }
}

/// Counters of what [`inject_faults`] actually did to a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Records removed by uniform drops.
    pub dropped: usize,
    /// Records removed by drop bursts.
    pub burst_dropped: usize,
    /// Duplicate records appended.
    pub duplicated: usize,
    /// Adjacent record swaps performed.
    pub reordered: usize,
    /// `S(p)` fields replaced with random values.
    pub corrupted_sum: usize,
    /// Records with `S(p)`/e2e pinned to `u16::MAX`.
    pub saturated: usize,
    /// Generation times jumped forward.
    pub clock_jumps: usize,
    /// Records whose `S(p)` was reset by a simulated reboot.
    pub reboots: usize,
    /// Paths truncated to a strict prefix.
    pub truncated_paths: usize,
}

impl FaultReport {
    /// Total number of individual faults injected.
    pub fn total(&self) -> usize {
        self.dropped
            + self.burst_dropped
            + self.duplicated
            + self.reordered
            + self.corrupted_sum
            + self.saturated
            + self.clock_jumps
            + self.reboots
            + self.truncated_paths
    }
}

/// Applies every enabled fault class to a copy of `trace`, returning the
/// corrupted trace and a report of what was injected.
///
/// Deterministic in `(trace, cfg)`: the injection RNG is seeded from
/// `cfg.seed` alone. When `cfg.is_quiet()` the input packets are
/// returned unchanged (bit-identical).
pub fn inject_faults(trace: &NetworkTrace, cfg: &FaultConfig) -> (NetworkTrace, FaultReport) {
    let mut report = FaultReport::default();
    if cfg.is_quiet() {
        return (trace.clone(), report);
    }
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let mut packets: Vec<CollectedPacket> = Vec::with_capacity(trace.packets.len());

    // Pass 1: drops (uniform and bursty).
    let mut burst_left = 0usize;
    for p in &trace.packets {
        if burst_left > 0 {
            burst_left -= 1;
            report.burst_dropped += 1;
            continue;
        }
        if cfg.burst_drop_rate > 0.0 && rng.bernoulli(cfg.burst_drop_rate) {
            burst_left = cfg.burst_len.saturating_sub(1);
            report.burst_dropped += 1;
            continue;
        }
        if cfg.drop_rate > 0.0 && rng.bernoulli(cfg.drop_rate) {
            report.dropped += 1;
            continue;
        }
        packets.push(p.clone());
    }

    // Pass 2: per-record field corruption on the survivors.
    let mut duplicates: Vec<CollectedPacket> = Vec::new();
    for p in &mut packets {
        if cfg.reboot_rate > 0.0 && rng.bernoulli(cfg.reboot_rate) {
            // The accumulator restarted mid-queue: S(p) keeps only a
            // random suffix of the true sum.
            p.sum_of_delays_ms = (f64::from(p.sum_of_delays_ms) * rng.f64()) as u16;
            report.reboots += 1;
        }
        if cfg.corrupt_sum_rate > 0.0 && rng.bernoulli(cfg.corrupt_sum_rate) {
            p.sum_of_delays_ms = rng.range_u64(0..u16::MAX as u64 + 1) as u16;
            report.corrupted_sum += 1;
        }
        if cfg.saturate_rate > 0.0 && rng.bernoulli(cfg.saturate_rate) {
            p.sum_of_delays_ms = u16::MAX;
            p.e2e_ms = u16::MAX;
            report.saturated += 1;
        }
        if cfg.clock_jump_rate > 0.0 && rng.bernoulli(cfg.clock_jump_rate) {
            let jump_ms = rng.range_u64(1..cfg.clock_jump_ms.max(1) + 1);
            p.gen_time += SimDuration::from_millis(jump_ms);
            report.clock_jumps += 1;
        }
        if cfg.truncate_path_rate > 0.0 && p.path.len() > 1 && rng.bernoulli(cfg.truncate_path_rate)
        {
            let keep = rng.range_usize(1..p.path.len());
            p.path.truncate(keep);
            report.truncated_paths += 1;
        }
        if cfg.duplicate_rate > 0.0 && rng.bernoulli(cfg.duplicate_rate) {
            duplicates.push(p.clone());
            report.duplicated += 1;
        }
    }
    // Duplicates land at the end of the trace, out of arrival order —
    // the serial-forwarder replay pathology.
    packets.extend(duplicates);

    // Pass 3: local reordering (adjacent swaps).
    if cfg.reorder_rate > 0.0 && packets.len() > 1 {
        for i in 0..packets.len() - 1 {
            if rng.bernoulli(cfg.reorder_rate) {
                packets.swap(i, i + 1);
                report.reordered += 1;
            }
        }
    }

    (
        NetworkTrace {
            packets,
            ..trace.clone()
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::run_simulation;

    fn base_trace() -> NetworkTrace {
        run_simulation(&NetworkConfig::small(16, 3))
    }

    #[test]
    fn quiet_config_is_identity() {
        let t = base_trace();
        let (out, report) = inject_faults(&t, &FaultConfig::default());
        assert_eq!(out.packets, t.packets);
        assert_eq!(report.total(), 0);
        assert!(FaultConfig::default().is_quiet());
        assert!(!FaultConfig::all(0.1, 1).is_quiet());
    }

    #[test]
    fn injection_is_deterministic() {
        let t = base_trace();
        let cfg = FaultConfig::all(0.2, 42);
        let (a, ra) = inject_faults(&t, &cfg);
        let (b, rb) = inject_faults(&t, &cfg);
        assert_eq!(a.packets, b.packets);
        assert_eq!(ra, rb);
    }

    #[test]
    fn drops_shrink_and_duplicates_grow_the_trace() {
        let t = base_trace();
        let (dropped, r) = inject_faults(
            &t,
            &FaultConfig {
                drop_rate: 0.5,
                ..FaultConfig::default()
            },
        );
        assert!(dropped.packets.len() < t.packets.len());
        assert_eq!(t.packets.len(), dropped.packets.len() + r.dropped);

        let (duped, r) = inject_faults(
            &t,
            &FaultConfig {
                duplicate_rate: 0.5,
                ..FaultConfig::default()
            },
        );
        assert_eq!(duped.packets.len(), t.packets.len() + r.duplicated);
        assert!(r.duplicated > 0);
    }

    #[test]
    fn burst_drops_remove_consecutive_records() {
        let t = base_trace();
        let cfg = FaultConfig {
            burst_drop_rate: 0.05,
            burst_len: 4,
            ..FaultConfig::default()
        };
        let (out, r) = inject_faults(&t, &cfg);
        assert_eq!(t.packets.len(), out.packets.len() + r.burst_dropped);
    }

    #[test]
    fn saturation_pins_both_two_byte_fields() {
        let t = base_trace();
        let (out, r) = inject_faults(
            &t,
            &FaultConfig {
                saturate_rate: 1.0,
                ..FaultConfig::default()
            },
        );
        assert_eq!(r.saturated, out.packets.len());
        assert!(out
            .packets
            .iter()
            .all(|p| p.sum_of_delays_ms == u16::MAX && p.e2e_ms == u16::MAX));
    }

    #[test]
    fn clock_jumps_move_generation_forward() {
        let t = base_trace();
        let (out, r) = inject_faults(
            &t,
            &FaultConfig {
                clock_jump_rate: 1.0,
                clock_jump_ms: 60_000,
                ..FaultConfig::default()
            },
        );
        assert_eq!(r.clock_jumps, out.packets.len());
        for (a, b) in out.packets.iter().zip(&t.packets) {
            assert!(a.gen_time > b.gen_time);
        }
    }

    #[test]
    fn truncated_paths_no_longer_end_at_sink() {
        let t = base_trace();
        let (out, r) = inject_faults(
            &t,
            &FaultConfig {
                truncate_path_rate: 1.0,
                ..FaultConfig::default()
            },
        );
        assert!(r.truncated_paths > 0);
        assert!(out
            .packets
            .iter()
            .any(|p| p.path.last().is_some_and(|n| !n.is_sink())));
    }

    #[test]
    fn ground_truth_and_stats_are_untouched() {
        let t = base_trace();
        let (out, _) = inject_faults(&t, &FaultConfig::all(0.3, 9));
        assert_eq!(out.ground_truth.len(), t.ground_truth.len());
        assert_eq!(out.stats, t.stats);
        assert_eq!(out.num_nodes, t.num_nodes);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        assert_eq!(FaultConfig::default().validate(), Ok(()));
        let bad = [
            FaultConfig {
                drop_rate: 1.5,
                ..FaultConfig::default()
            },
            FaultConfig {
                burst_drop_rate: 0.1,
                burst_len: 0,
                ..FaultConfig::default()
            },
            FaultConfig {
                clock_jump_rate: 0.1,
                clock_jump_ms: 0,
                ..FaultConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }
}
