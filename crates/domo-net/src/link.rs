//! The radio link model.
//!
//! Link quality follows the classic empirical shape used in sensor-net
//! simulation: a sigmoid packet-reception-ratio (PRR) curve over
//! distance, a static per-link log-normal fading multiplier, and a slow
//! sinusoidal temporal component per link that drives the routing
//! dynamics Domo's evaluation relies on (parents switch when links
//! degrade). Links below a PRR floor are not neighbors at all.

use crate::config::{NetworkConfig, Placement};
use crate::types::{NodeId, Position};
use domo_util::rng::Xoshiro256pp;
use domo_util::time::SimTime;
use std::collections::HashMap;

/// PRR below which a pair of nodes is not considered connected.
pub const PRR_FLOOR: f64 = 0.05;

/// Static and temporal parameters of one undirected link.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkParams {
    /// Distance-based PRR multiplied by static fading.
    base_prr: f64,
    /// Phase of the temporal sinusoid.
    phase: f64,
}

/// The full link model: node positions plus per-link parameters.
#[derive(Debug, Clone)]
pub struct LinkModel {
    positions: Vec<Position>,
    links: HashMap<(u16, u16), LinkParams>,
    neighbors: Vec<Vec<NodeId>>,
    variation_amplitude: f64,
    variation_period_us: f64,
}

impl LinkModel {
    /// Builds the link model for a configuration, drawing placement and
    /// fading from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (call
    /// [`NetworkConfig::validate`] first).
    pub fn build(config: &NetworkConfig, rng: &mut Xoshiro256pp) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid network configuration: {e}");
        }
        let n = config.num_nodes;
        let side = config.area_side();

        let mut positions = Vec::with_capacity(n);
        match config.placement {
            Placement::GridJitter => {
                let cells = (n as f64).sqrt().ceil() as usize;
                let cell = side / cells as f64;
                // The sink takes the corner cell; other nodes fill the
                // grid in row-major order with jitter.
                for i in 0..n {
                    let (r, c) = (i / cells, i % cells);
                    let jx = rng.range_f64(-0.3..0.3) * cell;
                    let jy = rng.range_f64(-0.3..0.3) * cell;
                    positions.push(Position {
                        x: (c as f64 + 0.5) * cell + jx,
                        y: (r as f64 + 0.5) * cell + jy,
                    });
                }
            }
            Placement::UniformRandom => {
                positions.push(Position {
                    x: 0.05 * side,
                    y: 0.05 * side,
                }); // sink near the corner
                for _ in 1..n {
                    positions.push(Position {
                        x: rng.range_f64(0.0..side),
                        y: rng.range_f64(0.0..side),
                    });
                }
            }
        }

        let mut links = HashMap::new();
        let mut neighbors = vec![Vec::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = positions[a].distance(positions[b]);
                // Sigmoid PRR over distance.
                let geo = 1.0 / (1.0 + ((d - config.radio_d50) / config.radio_slope).exp());
                if geo < PRR_FLOOR / 2.0 {
                    continue;
                }
                // Static log-normal fading.
                let fade = (rng.normal(0.0, config.fading_sigma)).exp();
                let base = (geo * fade).clamp(0.0, 1.0);
                if base < PRR_FLOOR {
                    continue;
                }
                links.insert(
                    (a as u16, b as u16),
                    LinkParams {
                        base_prr: base,
                        phase: rng.range_f64(0.0..std::f64::consts::TAU),
                    },
                );
                neighbors[a].push(NodeId::new(b as u16));
                neighbors[b].push(NodeId::new(a as u16));
            }
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }

        Self {
            positions,
            links,
            neighbors,
            variation_amplitude: config.link_variation_amplitude,
            variation_period_us: config.link_variation_period.as_micros().max(1) as f64,
        }
    }

    /// Number of nodes in the model.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// All node positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// The neighbor list of a node (nodes with PRR above the floor).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// Instantaneous PRR of the link `a ↔ b` at simulated time `t`;
    /// `0.0` for non-links.
    pub fn prr(&self, a: NodeId, b: NodeId, t: SimTime) -> f64 {
        let key = if a.index() <= b.index() {
            (a.index() as u16, b.index() as u16)
        } else {
            (b.index() as u16, a.index() as u16)
        };
        match self.links.get(&key) {
            None => 0.0,
            Some(p) => {
                let angle = std::f64::consts::TAU * t.as_micros() as f64 / self.variation_period_us
                    + p.phase;
                (p.base_prr + self.variation_amplitude * angle.sin()).clamp(0.0, 1.0)
            }
        }
    }

    /// Returns `true` if every node can reach the sink through links
    /// above the PRR floor (static topology check).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for v in self.neighbors(NodeId::new(u as u16)) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v.index());
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domo_util::time::SimDuration;

    fn model(seed: u64) -> LinkModel {
        let cfg = NetworkConfig::small(25, seed);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        LinkModel::build(&cfg, &mut rng)
    }

    #[test]
    fn grid_jitter_network_is_connected() {
        for seed in 1..6 {
            assert!(model(seed).is_connected(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn prr_is_symmetric_and_bounded() {
        let m = model(1);
        let t = SimTime::from_secs(30);
        for a in 0..m.num_nodes() {
            for b in 0..m.num_nodes() {
                let (na, nb) = (NodeId::new(a as u16), NodeId::new(b as u16));
                let p = m.prr(na, nb, t);
                assert!((0.0..=1.0).contains(&p));
                assert_eq!(p, m.prr(nb, na, t), "asymmetric PRR {a}-{b}");
            }
        }
    }

    #[test]
    fn close_links_beat_far_links() {
        let m = model(2);
        let t = SimTime::ZERO;
        // Average PRR of all links under 0.8·spacing vs over 1.5·spacing.
        let mut near = Vec::new();
        let mut far = Vec::new();
        for a in 0..m.num_nodes() {
            for b in (a + 1)..m.num_nodes() {
                let (na, nb) = (NodeId::new(a as u16), NodeId::new(b as u16));
                let d = m.position(na).distance(m.position(nb));
                let p = m.prr(na, nb, t);
                if d < 8.0 {
                    near.push(p);
                } else if d > 15.0 && p > 0.0 {
                    far.push(p);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            avg(&near) > 0.7,
            "near links should be strong: {}",
            avg(&near)
        );
        if !far.is_empty() {
            assert!(avg(&near) > avg(&far));
        }
    }

    #[test]
    fn prr_varies_over_time() {
        let m = model(3);
        // Find some link and check its PRR moves across the variation
        // period.
        let mut moved = false;
        'outer: for a in 0..m.num_nodes() {
            for b in m.neighbors(NodeId::new(a as u16)) {
                let p0 = m.prr(NodeId::new(a as u16), *b, SimTime::ZERO);
                let p1 = m.prr(
                    NodeId::new(a as u16),
                    *b,
                    SimTime::ZERO + SimDuration::from_secs(15),
                );
                if (p0 - p1).abs() > 0.01 {
                    moved = true;
                    break 'outer;
                }
            }
        }
        assert!(moved, "temporal variation should change some link");
    }

    #[test]
    fn non_neighbors_have_zero_prr() {
        let cfg = NetworkConfig::small(49, 9);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let m = LinkModel::build(&cfg, &mut rng);
        // Opposite corners of a 7×7 grid cannot talk directly.
        let far_a = NodeId::new(0);
        let far_b = NodeId::new(48);
        assert_eq!(m.prr(far_a, far_b, SimTime::ZERO), 0.0);
        assert!(!m.neighbors(far_a).contains(&far_b));
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = NetworkConfig::small(16, 5);
        let mut r1 = Xoshiro256pp::seed_from_u64(5);
        let mut r2 = Xoshiro256pp::seed_from_u64(5);
        let m1 = LinkModel::build(&cfg, &mut r1);
        let m2 = LinkModel::build(&cfg, &mut r2);
        assert_eq!(m1.positions(), m2.positions());
        let t = SimTime::from_millis(1234);
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(
                    m1.prr(NodeId::new(a), NodeId::new(b), t),
                    m2.prr(NodeId::new(a), NodeId::new(b), t)
                );
            }
        }
    }

    #[test]
    fn uniform_placement_also_builds() {
        let mut cfg = NetworkConfig::small(30, 7);
        cfg.placement = Placement::UniformRandom;
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let m = LinkModel::build(&cfg, &mut rng);
        assert_eq!(m.num_nodes(), 30);
        // Sink sits near the corner.
        let sink = m.position(NodeId::SINK);
        assert!(sink.x < cfg.area_side() * 0.1 + 1e-9);
    }
}
