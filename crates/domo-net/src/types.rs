//! Identifiers shared across the simulator and the reconstruction stack.

use std::fmt;

/// A node identifier. Node `0` is always the sink.
///
/// # Examples
///
/// ```
/// use domo_net::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert!(!n.is_sink());
/// assert!(NodeId::SINK.is_sink());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// The sink node (always id 0).
    pub const SINK: NodeId = NodeId(0);

    /// Creates a node id.
    pub const fn new(id: u16) -> Self {
        NodeId(id)
    }

    /// The raw id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the sink node.
    pub const fn is_sink(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A globally unique packet identifier: origin node plus a per-origin
/// sequence number.
///
/// # Examples
///
/// ```
/// use domo_net::{NodeId, PacketId};
///
/// let pid = PacketId::new(NodeId::new(7), 42);
/// assert_eq!(pid.origin, NodeId::new(7));
/// assert_eq!(pid.seq, 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId {
    /// The node that generated the packet.
    pub origin: NodeId,
    /// Sequence number local to the origin.
    pub seq: u32,
}

impl PacketId {
    /// Creates a packet id.
    pub const fn new(origin: NodeId, seq: u32) -> Self {
        Self { origin, seq }
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// A 2-D position in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_is_node_zero() {
        assert!(NodeId::SINK.is_sink());
        assert_eq!(NodeId::SINK.index(), 0);
        assert!(!NodeId::new(1).is_sink());
    }

    #[test]
    fn packet_id_identity() {
        let a = PacketId::new(NodeId::new(1), 5);
        let b = PacketId::new(NodeId::new(1), 5);
        let c = PacketId::new(NodeId::new(2), 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "n1#5");
    }

    #[test]
    fn ordering_is_origin_then_seq() {
        let a = PacketId::new(NodeId::new(1), 9);
        let b = PacketId::new(NodeId::new(2), 0);
        assert!(a < b);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Position { x: 0.0, y: 0.0 };
        let b = Position { x: 3.0, y: 4.0 };
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }
}
