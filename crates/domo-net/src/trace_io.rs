//! Plain-text import/export of collected traces.
//!
//! Domo's PC side is useful beyond this simulator: any deployment that
//! records the four sink-side quantities per packet (path, generation
//! time, sink arrival, `S(p)`) can feed the reconstruction. This module
//! defines a small line-oriented format and a lossless round trip for
//! [`CollectedPacket`] records, so traces can cross process and language
//! boundaries without pulling a serialization dependency into the
//! workspace.
//!
//! ## Format
//!
//! One record per line, `#`-prefixed comments ignored:
//!
//! ```text
//! origin,seq,gen_us,sink_us,sum_ms,e2e_ms,path
//! 17,42,1500000,1534000,12,34,17-9-3-0
//! ```
//!
//! `path` is a `-`-separated node-id list, source first, sink (`0`)
//! last. Times are microseconds on the collection axis.

use crate::trace::CollectedPacket;
use crate::types::{NodeId, PacketId};
use domo_util::time::SimTime;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Errors produced while parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes packets into the line format (with a header comment).
///
/// # Examples
///
/// ```
/// use domo_net::trace_io::{packets_to_string, packets_from_str};
///
/// let trace = domo_net::run_simulation(&domo_net::NetworkConfig::small(9, 1));
/// let text = packets_to_string(&trace.packets);
/// let back = packets_from_str(&text)?;
/// assert_eq!(back, trace.packets);
/// # Ok::<(), domo_net::trace_io::ParseTraceError>(())
/// ```
pub fn packets_to_string(packets: &[CollectedPacket]) -> String {
    let mut out = String::with_capacity(packets.len() * 48);
    out.push_str("# domo trace v1: origin,seq,gen_us,sink_us,sum_ms,e2e_ms,path\n");
    for p in packets {
        let path: Vec<String> = p.path.iter().map(|n| n.index().to_string()).collect();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            p.pid.origin.index(),
            p.pid.seq,
            p.gen_time.as_micros(),
            p.sink_arrival.as_micros(),
            p.sum_of_delays_ms,
            p.e2e_ms,
            path.join("-"),
        );
    }
    out
}

/// Parses packets from the line format.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the first malformed line: wrong
/// field count, non-numeric fields, empty or inconsistent paths
/// (the first path element must be the origin, the last must be the
/// sink; ids must fit `u16`), or a duplicated `(origin, seq)` id.
pub fn packets_from_str(text: &str) -> Result<Vec<CollectedPacket>, ParseTraceError> {
    let mut packets = Vec::new();
    let mut seen: HashSet<PacketId> = HashSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(ParseTraceError {
                line: line_no,
                message: format!("expected 7 fields, found {}", fields.len()),
            });
        }
        let err = |message: String| ParseTraceError {
            line: line_no,
            message,
        };
        let origin: u16 = fields[0].parse().map_err(|e| err(format!("origin: {e}")))?;
        let seq: u32 = fields[1].parse().map_err(|e| err(format!("seq: {e}")))?;
        let gen_us: u64 = fields[2].parse().map_err(|e| err(format!("gen_us: {e}")))?;
        let sink_us: u64 = fields[3]
            .parse()
            .map_err(|e| err(format!("sink_us: {e}")))?;
        let sum_ms: u16 = fields[4].parse().map_err(|e| err(format!("sum_ms: {e}")))?;
        let e2e_ms: u16 = fields[5].parse().map_err(|e| err(format!("e2e_ms: {e}")))?;
        if sink_us < gen_us {
            return Err(err("sink arrival precedes generation".into()));
        }
        let path: Vec<NodeId> = fields[6]
            .split('-')
            .map(|tok| {
                tok.parse::<u16>()
                    .map(NodeId::new)
                    .map_err(|e| err(format!("path element '{tok}': {e}")))
            })
            .collect::<Result<_, _>>()?;
        if path.len() < 2 {
            return Err(err("path must have at least source and sink".into()));
        }
        if path[0] != NodeId::new(origin) {
            return Err(err("path must start at the origin".into()));
        }
        if path.last().is_some_and(|n| !n.is_sink()) {
            return Err(err("path must end at the sink (node 0)".into()));
        }
        let pid = PacketId::new(NodeId::new(origin), seq);
        if !seen.insert(pid) {
            return Err(err(format!("duplicate packet id {origin},{seq}")));
        }
        packets.push(CollectedPacket {
            pid,
            gen_time: SimTime::from_micros(gen_us),
            sink_arrival: SimTime::from_micros(sink_us),
            path,
            sum_of_delays_ms: sum_ms,
            e2e_ms,
        });
    }
    Ok(packets)
}

/// Writes packets to a file.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_packets(path: &std::path::Path, packets: &[CollectedPacket]) -> std::io::Result<()> {
    std::fs::write(path, packets_to_string(packets))
}

/// Reads packets from a file.
///
/// # Errors
///
/// Returns I/O errors as `std::io::Error` and format errors as
/// [`ParseTraceError`] wrapped into `std::io::Error` with
/// `InvalidData` kind.
pub fn read_packets(path: &std::path::Path) -> std::io::Result<Vec<CollectedPacket>> {
    let text = std::fs::read_to_string(path)?;
    packets_from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::run_simulation;

    #[test]
    fn round_trip_preserves_everything() {
        let trace = run_simulation(&NetworkConfig::small(16, 77));
        assert!(!trace.packets.is_empty());
        let text = packets_to_string(&trace.packets);
        let back = packets_from_str(&text).expect("round trip parses");
        assert_eq!(back, trace.packets);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n  \n5,0,1000,2000,1,1,5-0\n";
        let packets = packets_from_str(text).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].pid.origin.index(), 5);
        assert_eq!(packets[0].path.len(), 2);
    }

    #[test]
    fn malformed_lines_report_position() {
        let cases = [
            ("5,0,1000,2000,1,1", "expected 7 fields"),
            ("x,0,1000,2000,1,1,5-0", "origin"),
            ("5,0,1000,2000,1,1,7-0", "start at the origin"),
            ("5,0,1000,2000,1,1,5", "at least source and sink"),
            ("5,0,2000,1000,1,1,5-0", "precedes generation"),
            ("5,0,1000,2000,1,1,5-zz-0", "path element"),
            ("5,0,1000,2000,1,1,5-7", "end at the sink"),
            ("5,0,1000,2000,65536,1,5-0", "sum_ms"),
            ("5,0,1000,2000,1,65536,5-0", "e2e_ms"),
        ];
        for (line, needle) in cases {
            let text = format!("# hdr\n{line}\n");
            let e = packets_from_str(&text).expect_err(line);
            assert_eq!(e.line, 2, "error should name line 2 for {line}");
            assert!(
                e.message.contains(needle),
                "message {:?} should contain {needle:?}",
                e.message
            );
            assert!(e.to_string().contains("line 2"));
        }
    }

    #[test]
    fn saturated_two_byte_fields_parse_at_the_limit() {
        // u16::MAX is a *legal* wire value (a saturated accumulator);
        // only 65536 and beyond are parse errors.
        let text = "5,0,1000,2000,65535,65535,5-0\n";
        let packets = packets_from_str(text).unwrap();
        assert_eq!(packets[0].sum_of_delays_ms, u16::MAX);
        assert_eq!(packets[0].e2e_ms, u16::MAX);
    }

    #[test]
    fn duplicate_packet_ids_are_rejected() {
        let text = "5,0,1000,2000,1,1,5-0\n5,0,3000,4000,2,1,5-0\n";
        let e = packets_from_str(text).expect_err("duplicate id");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate packet id 5,0"));
        // Same origin with a different seq is fine.
        let ok = "5,0,1000,2000,1,1,5-0\n5,1,3000,4000,2,1,5-0\n";
        assert_eq!(packets_from_str(ok).unwrap().len(), 2);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes() {
        // Hand-rolled fuzz loop (proptest lives outside the offline
        // workspace): random byte soup, random mutations of a valid
        // record, and adversarial near-valid lines must all return
        // Ok/Err — never panic.
        use domo_util::rng::Xoshiro256pp;
        let mut rng = Xoshiro256pp::seed_from_u64(0xF00D);
        let alphabet: &[u8] = b"0123456789,-#x \t\n.eE+";
        for _ in 0..2_000 {
            let len = rng.range_usize(0..64);
            let bytes: Vec<u8> = (0..len)
                .map(|_| alphabet[rng.range_usize(0..alphabet.len())])
                .collect();
            let text = String::from_utf8_lossy(&bytes).into_owned();
            let _ = packets_from_str(&text);
        }
        let valid = "5,0,1000,2000,1,1,5-3-0";
        for _ in 0..2_000 {
            let mut line: Vec<u8> = valid.as_bytes().to_vec();
            for _ in 0..rng.range_usize(1..4) {
                let pos = rng.range_usize(0..line.len());
                line[pos] = alphabet[rng.range_usize(0..alphabet.len())];
            }
            let text = String::from_utf8_lossy(&line).into_owned();
            let _ = packets_from_str(&text);
        }
    }

    #[test]
    fn file_round_trip() {
        let trace = run_simulation(&NetworkConfig::small(9, 78));
        let dir = std::env::temp_dir().join("domo_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("trace.csv");
        write_packets(&file, &trace.packets).unwrap();
        let back = read_packets(&file).unwrap();
        assert_eq!(back, trace.packets);
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn parsed_trace_feeds_reconstruction_shapes() {
        // The parsed form must be structurally usable: paths end at the
        // sink, e2e consistent.
        let trace = run_simulation(&NetworkConfig::small(9, 79));
        let text = packets_to_string(&trace.packets);
        let back = packets_from_str(&text).unwrap();
        for p in &back {
            assert!(p.path.last().unwrap().is_sink());
            assert!(p.sink_arrival >= p.gen_time);
        }
    }
}
