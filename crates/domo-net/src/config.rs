//! Simulation configuration.

use crate::faults::FaultConfig;
use domo_util::time::SimDuration;

/// Parent-selection strategy of the collection protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingProtocol {
    /// CTP-style: minimize cumulative ETX (the default and the paper's
    /// setting).
    EtxCtp,
    /// MultihopLQI-style: minimize hop count over links above a quality
    /// threshold, tie-broken by link quality. Produces different tree
    /// shapes and different dynamics — used to show Domo is not wedded
    /// to one routing protocol (§III lists CTP *and* MintRoute).
    LqiMultihop {
        /// Minimum PRR for a link to be considered at all.
        min_prr: f64,
    },
}

/// Radio duty-cycling at the MAC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacMode {
    /// Radios always on (the paper's TelosB/TinyOS setting).
    AlwaysOn,
    /// Low-power listening: receivers wake every `wake_interval`; a
    /// sender transmits a wake-up preamble of up to one interval before
    /// the frame. Per-hop delays grow by ~U[0, wake_interval] — the
    /// extremely-low-duty-cycle regime of the paper's reference [8].
    LowPowerListening {
        /// Receiver wake-up period.
        wake_interval: SimDuration,
    },
}

/// How node positions are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// A √n × √n grid with ±30 % cell jitter — "uniformly distributed in
    /// a squared area" (paper §VI.A) while guaranteeing the network is
    /// connectable.
    GridJitter,
    /// Independent uniform positions in the square (may leave nodes
    /// unreachable; useful for robustness experiments).
    UniformRandom,
}

/// Full description of a simulated collection network.
///
/// Node `0` is the sink and sits near one corner of the square, as in
/// the deployments the paper references (CitySee's sink is at the edge
/// of the field).
///
/// # Examples
///
/// ```
/// use domo_net::NetworkConfig;
///
/// let cfg = NetworkConfig::small(25, 1);
/// assert_eq!(cfg.num_nodes, 25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Total node count including the sink.
    pub num_nodes: usize,
    /// Average spacing between grid neighbors (m).
    pub node_spacing: f64,
    /// Placement strategy.
    pub placement: Placement,
    /// Distance at which link PRR crosses 50 % (m).
    pub radio_d50: f64,
    /// Sigmoid steepness of the PRR-vs-distance curve (m).
    pub radio_slope: f64,
    /// Log-normal σ of the static per-link fading multiplier.
    pub fading_sigma: f64,
    /// Amplitude of the sinusoidal temporal PRR variation.
    pub link_variation_amplitude: f64,
    /// Period of the temporal PRR variation.
    pub link_variation_period: SimDuration,
    /// Mean interval between packets generated at each node.
    pub traffic_period: SimDuration,
    /// Uniform jitter applied to each inter-packet interval (±).
    pub traffic_jitter: SimDuration,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Maximum data retransmissions before a packet is dropped.
    pub max_retries: u32,
    /// FIFO send-queue capacity per node.
    pub queue_capacity: usize,
    /// Initial CSMA backoff range (uniform).
    pub backoff: (SimDuration, SimDuration),
    /// Congestion backoff range after a failed attempt (uniform).
    pub congestion_backoff: (SimDuration, SimDuration),
    /// Routing/beacon recomputation interval.
    pub beacon_interval: SimDuration,
    /// ETX improvement required before switching parent.
    pub etx_hysteresis: f64,
    /// σ of the multiplicative noise on beacon-time PRR estimates.
    pub etx_noise_sigma: f64,
    /// Maximum absolute per-node clock drift (ppm); each node draws a
    /// drift uniformly in ±this.
    pub clock_drift_ppm: f64,
    /// Hop budget after which a packet is discarded (routing-loop guard).
    pub max_hops: usize,
    /// Parent-selection strategy.
    pub routing_protocol: RoutingProtocol,
    /// MAC duty-cycling mode.
    pub mac_mode: MacMode,
    /// Optional event bursts on top of the periodic traffic: at each
    /// event, nodes within `radius` of a random epicenter each emit
    /// `packets` extra packets in quick succession (event-driven
    /// monitoring à la the paper's application scenarios — and a
    /// congestion stressor for the reconstruction).
    pub event_bursts: Option<EventBursts>,
    /// Probability that a link-layer ACK reaches the sender when the
    /// data frame was accepted. Below `1.0`, lost ACKs cause spurious
    /// retransmissions and duplicate suppression at receivers, and the
    /// sender's sum-of-delays commits at a *later* attempt than the
    /// receiver's recorded arrival — the real-hardware measurement skew
    /// the constraint slack has to absorb.
    pub ack_reliability: f64,
    /// Optional sink-side fault injection applied to the finished trace
    /// (see [`crate::faults`]): record drops and bursts, duplicates,
    /// reordering, corrupted/saturated `S(p)`/e2e fields, clock jumps,
    /// accumulator-resetting reboots, truncated paths. `None` (the
    /// default) leaves the trace exactly as simulated.
    pub faults: Option<FaultConfig>,
    /// RNG seed; every run with the same config is bit-identical.
    pub seed: u64,
}

/// Configuration of environmental event bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventBursts {
    /// Mean interval between events (exponentially distributed).
    pub mean_interval: SimDuration,
    /// Nodes within this distance of the epicenter react (m).
    pub radius: f64,
    /// Extra packets each reacting node emits.
    pub packets: u32,
    /// Spacing between a node's burst packets.
    pub spacing: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            num_nodes: 100,
            node_spacing: 10.0,
            placement: Placement::GridJitter,
            radio_d50: 13.0,
            radio_slope: 2.0,
            fading_sigma: 0.08,
            link_variation_amplitude: 0.12,
            link_variation_period: SimDuration::from_secs(60),
            traffic_period: SimDuration::from_secs(10),
            traffic_jitter: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(120),
            max_retries: 5,
            queue_capacity: 12,
            backoff: (SimDuration::from_micros(500), SimDuration::from_millis(4)),
            congestion_backoff: (SimDuration::from_millis(1), SimDuration::from_millis(8)),
            beacon_interval: SimDuration::from_secs(10),
            etx_hysteresis: 0.5,
            etx_noise_sigma: 0.1,
            clock_drift_ppm: 30.0,
            max_hops: 32,
            routing_protocol: RoutingProtocol::EtxCtp,
            mac_mode: MacMode::AlwaysOn,
            event_bursts: None,
            ack_reliability: 1.0,
            faults: None,
            seed: 1,
        }
    }
}

impl NetworkConfig {
    /// A small, fast configuration for unit tests and doc examples.
    pub fn small(num_nodes: usize, seed: u64) -> Self {
        Self {
            num_nodes,
            duration: SimDuration::from_secs(60),
            traffic_period: SimDuration::from_secs(5),
            traffic_jitter: SimDuration::from_secs(1),
            seed,
            ..Self::default()
        }
    }

    /// The paper's evaluation setting: `n` nodes (100 / 225 / 400)
    /// uniformly distributed in a square running CTP-style collection.
    ///
    /// The radio geometry is calibrated so that the 400-node deployment
    /// produces trees of the same depth regime as the paper's TOSSIM
    /// networks (average path length well under ten hops, delivery ratio
    /// ≈ 98 %): a TelosB-class range of ~2.5 grid cells with a soft PRR
    /// roll-off, so CTP routes over a mix of strong and imperfect links.
    pub fn paper_scale(num_nodes: usize, seed: u64) -> Self {
        Self {
            num_nodes,
            radio_d50: 26.0,
            radio_slope: 5.0,
            fading_sigma: 0.15,
            link_variation_amplitude: 0.15,
            duration: SimDuration::from_secs(300),
            traffic_period: SimDuration::from_secs(20),
            traffic_jitter: SimDuration::from_secs(4),
            seed,
            ..Self::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant (at least 2 nodes, positive durations, ordered backoff
    /// ranges, non-zero queue).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_nodes < 2 {
            return Err("need at least a sink and one source".into());
        }
        if self.num_nodes > u16::MAX as usize {
            return Err("node ids are u16".into());
        }
        if self.duration == SimDuration::ZERO {
            return Err("duration must be positive".into());
        }
        if self.traffic_period == SimDuration::ZERO {
            return Err("traffic period must be positive".into());
        }
        if self.backoff.0 > self.backoff.1 || self.congestion_backoff.0 > self.congestion_backoff.1
        {
            return Err("backoff ranges must be ordered".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if self.max_hops < 2 {
            return Err("max hops must allow at least one forward".into());
        }
        if !(self.radio_d50 > 0.0 && self.radio_slope > 0.0 && self.node_spacing > 0.0) {
            return Err("radio geometry must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.ack_reliability) {
            return Err("ack reliability must be in [0, 1]".into());
        }
        if let Some(f) = &self.faults {
            f.validate()?;
        }
        Ok(())
    }

    /// Side length of the deployment square (m).
    pub fn area_side(&self) -> f64 {
        (self.num_nodes as f64).sqrt().ceil() * self.node_spacing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(NetworkConfig::default().validate(), Ok(()));
        assert_eq!(NetworkConfig::small(10, 3).validate(), Ok(()));
        assert_eq!(NetworkConfig::paper_scale(400, 1).validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = [
            NetworkConfig {
                num_nodes: 1,
                ..NetworkConfig::default()
            },
            NetworkConfig {
                duration: SimDuration::ZERO,
                ..NetworkConfig::default()
            },
            NetworkConfig {
                backoff: (SimDuration::from_millis(5), SimDuration::from_millis(1)),
                ..NetworkConfig::default()
            },
            NetworkConfig {
                queue_capacity: 0,
                ..NetworkConfig::default()
            },
            NetworkConfig {
                max_hops: 1,
                ..NetworkConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn area_scales_with_node_count() {
        let small = NetworkConfig::small(100, 1);
        let large = NetworkConfig::small(400, 1);
        assert!(large.area_side() > small.area_side());
        assert_eq!(small.area_side(), 100.0);
        assert_eq!(large.area_side(), 200.0);
    }
}
