//! Topology and workload characterization of a trace.
//!
//! Reconstruction quality depends on the trace's shape: tree depth,
//! per-hop delay spread, loss, traffic density. This module summarizes
//! them so experiment reports (and users with their own traces) can see
//! what regime they are in before comparing numbers.

use crate::trace::NetworkTrace;
use domo_util::stats::Summary;

/// Workload/topology statistics of a delivered trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Delivered packets.
    pub packets: usize,
    /// Delivery ratio over generated packets.
    pub delivery_ratio: f64,
    /// Path lengths (node counts including source and sink).
    pub path_len: Summary,
    /// True per-hop sojourn times (ms) over all delivered hops.
    pub hop_delay_ms: Summary,
    /// True end-to-end delays (ms).
    pub e2e_delay_ms: Summary,
    /// Distinct nodes that appear as a forwarder.
    pub forwarders: usize,
    /// Maximum pass-through count over any single forwarder.
    pub max_node_load: usize,
}

impl TraceProfile {
    /// Computes the profile from a trace (uses ground truth — this is a
    /// workload characterization, not a reconstruction).
    ///
    /// Returns `None` for an empty trace.
    pub fn from_trace(trace: &NetworkTrace) -> Option<Self> {
        if trace.packets.is_empty() {
            return None;
        }
        let mut path_lens = Vec::with_capacity(trace.packets.len());
        let mut hop_delays = Vec::new();
        let mut e2e = Vec::with_capacity(trace.packets.len());
        let mut load = std::collections::HashMap::new();
        for p in &trace.packets {
            path_lens.push(p.path.len() as f64);
            e2e.push(p.e2e_delay().as_millis_f64());
            let times = trace.truth(p.pid)?;
            for w in times.windows(2) {
                hop_delays.push((w[1] - w[0]).as_millis_f64());
            }
            for node in &p.path[..p.path.len() - 1] {
                *load.entry(node.index()).or_insert(0usize) += 1;
            }
        }
        Some(Self {
            packets: trace.packets.len(),
            delivery_ratio: trace.stats.delivery_ratio(),
            path_len: Summary::from_values(&path_lens)?,
            hop_delay_ms: Summary::from_values(&hop_delays)?,
            e2e_delay_ms: Summary::from_values(&e2e)?,
            forwarders: load.len(),
            max_node_load: load.values().copied().max().unwrap_or(0),
        })
    }

    /// Renders a compact text block.
    pub fn render(&self) -> String {
        format!(
            "workload: {} packets delivered ({:.1}% delivery), {} forwarders, \
             hottest node relays {}\n\
             paths: mean {:.1} hops (p90 {:.0}, max {:.0})\n\
             per-hop sojourn: mean {:.2} ms (p50 {:.2}, p90 {:.2}, max {:.1})\n\
             end-to-end: mean {:.1} ms (p50 {:.1}, p90 {:.1}, max {:.1})\n",
            self.packets,
            100.0 * self.delivery_ratio,
            self.forwarders,
            self.max_node_load,
            self.path_len.mean,
            self.path_len.p90,
            self.path_len.max,
            self.hop_delay_ms.mean,
            self.hop_delay_ms.median,
            self.hop_delay_ms.p90,
            self.hop_delay_ms.max,
            self.e2e_delay_ms.mean,
            self.e2e_delay_ms.median,
            self.e2e_delay_ms.p90,
            self.e2e_delay_ms.max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::run_simulation;

    #[test]
    fn profile_reflects_the_trace() {
        let trace = run_simulation(&NetworkConfig::small(25, 501));
        let p = TraceProfile::from_trace(&trace).expect("non-empty");
        assert_eq!(p.packets, trace.packets.len());
        assert!(p.path_len.mean >= 2.0);
        assert!(p.hop_delay_ms.mean > 1.0);
        // e2e mean ≈ mean hops-1 × mean hop delay, loosely.
        assert!(p.e2e_delay_ms.mean > p.hop_delay_ms.mean);
        assert!(p.forwarders > 0);
        assert!(p.max_node_load >= p.packets / p.forwarders);
        let text = p.render();
        assert!(text.contains("per-hop sojourn"));
    }

    #[test]
    fn empty_trace_yields_none() {
        let trace = NetworkTrace {
            num_nodes: 1,
            seed: 0,
            packets: Vec::new(),
            ground_truth: Default::default(),
            node_logs: Vec::new(),
            positions: Vec::new(),
            stats: Default::default(),
        };
        assert!(TraceProfile::from_trace(&trace).is_none());
    }

    #[test]
    fn lpl_shifts_the_hop_delay_profile() {
        let base = NetworkConfig::small(16, 502);
        let mut lpl = base.clone();
        lpl.mac_mode = crate::config::MacMode::LowPowerListening {
            wake_interval: domo_util::time::SimDuration::from_millis(80),
        };
        let p_base = TraceProfile::from_trace(&run_simulation(&base)).unwrap();
        let p_lpl = TraceProfile::from_trace(&run_simulation(&lpl)).unwrap();
        assert!(p_lpl.hop_delay_ms.mean > p_base.hop_delay_ms.mean + 10.0);
    }
}
