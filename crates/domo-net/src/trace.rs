//! The trace a Domo deployment delivers to the PC side, plus the
//! evaluation-only ground truth.
//!
//! A [`CollectedPacket`] carries exactly the information the paper
//! assumes available at the sink (§III.B): the routing path, the
//! generation time, the sink arrival time, and the 2-byte sum-of-delays
//! field `S(p)`. The per-hop arrival times live in
//! [`NetworkTrace::ground_truth`] and are used *only* to score
//! reconstructions — the algorithms never read them.

use crate::types::{NodeId, PacketId, Position};
use domo_util::time::SimTime;
use std::collections::HashMap;

/// One packet as received and decoded at the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedPacket {
    /// Identifier (origin + sequence number).
    pub pid: PacketId,
    /// Generation time `t₀(p)` (known via time-reconstruction methods,
    /// paper assumption).
    pub gen_time: SimTime,
    /// Arrival time at the sink `t_{|p|−1}(p)`.
    pub sink_arrival: SimTime,
    /// The routing path, source first, sink last (known via path
    /// reconstruction, paper assumption).
    pub path: Vec<NodeId>,
    /// The on-air 2-byte sum-of-delays field, in milliseconds.
    pub sum_of_delays_ms: u16,
    /// The on-air 2-byte accumulated end-to-end delay field, in
    /// milliseconds (measured with the nodes' drifting clocks).
    pub e2e_ms: u16,
}

impl CollectedPacket {
    /// Path length `|p|` (number of nodes including source and sink).
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// End-to-end delay derived from the trusted sink-side quantities.
    pub fn e2e_delay(&self) -> domo_util::time::SimDuration {
        self.sink_arrival.saturating_sub(self.gen_time)
    }

    /// Number of interior (unknown) arrival times this packet
    /// contributes to the reconstruction: `max(|p| − 2, 0)`.
    pub fn num_interior(&self) -> usize {
        self.path.len().saturating_sub(2)
    }

    /// The sink's child whose subtree delivered this packet — the
    /// second-to-last path node. Packets from the same subtree share
    /// forwarding nodes (and therefore constraint structure), which
    /// makes this the natural shard key for a partitioned online sink.
    /// `None` when the path has fewer than two nodes (malformed; the
    /// sanitizer rejects such records).
    pub fn subtree_root(&self) -> Option<NodeId> {
        (self.path.len() >= 2).then(|| self.path[self.path.len() - 2])
    }
}

/// What a node wrote to its local log (the MessageTracing baseline reads
/// these; Domo itself never does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogEventKind {
    /// The node transmitted this packet (locally generated or forwarded).
    Send,
    /// The node received this packet for forwarding.
    Receive,
}

/// One entry of a node's local event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEvent {
    /// Send or receive.
    pub kind: LogEventKind,
    /// The packet involved.
    pub pid: PacketId,
}

/// Loss/throughput counters from a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Packets generated at sources.
    pub generated: usize,
    /// Packets fully delivered to the sink.
    pub delivered: usize,
    /// Packets dropped because a send queue was full.
    pub dropped_queue: usize,
    /// Packets dropped after exhausting retransmissions.
    pub dropped_retx: usize,
    /// Packets dropped for lack of a route.
    pub dropped_no_route: usize,
    /// Packets dropped by the hop-budget (routing-loop) guard.
    pub dropped_ttl: usize,
}

impl SimStats {
    /// Delivery ratio over generated packets (1.0 for an idle network).
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct NetworkTrace {
    /// Number of nodes in the network (including the sink).
    pub num_nodes: usize,
    /// Seed the run used.
    pub seed: u64,
    /// Delivered packets, sorted by sink arrival time.
    pub packets: Vec<CollectedPacket>,
    /// Ground-truth per-hop arrival times, aligned with each packet's
    /// `path` (index 0 = generation time, last = sink arrival).
    pub ground_truth: HashMap<PacketId, Vec<SimTime>>,
    /// Per-node local logs (for the MessageTracing baseline).
    pub node_logs: Vec<Vec<LogEvent>>,
    /// Node positions (for rendering delay maps à la Figure 1).
    pub positions: Vec<Position>,
    /// Loss and throughput counters.
    pub stats: SimStats,
}

impl NetworkTrace {
    /// Looks up the ground-truth arrival times of a packet.
    pub fn truth(&self, pid: PacketId) -> Option<&[SimTime]> {
        self.ground_truth.get(&pid).map(Vec::as_slice)
    }

    /// Total number of unknown interior arrival times across the trace —
    /// the quantity Domo must reconstruct (`Σ max(|p| − 2, 0)`).
    pub fn num_unknowns(&self) -> usize {
        self.packets.iter().map(CollectedPacket::num_interior).sum()
    }

    /// Returns a copy of the trace with `fraction` of the delivered
    /// packets removed uniformly at random — the paper's packet-loss
    /// experiment (§VI.B "Impact of packet loss" removes packets from
    /// the original trace). Ground truth and logs keep all packets; only
    /// the sink-side view shrinks.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1)`.
    pub fn with_extra_loss(
        &self,
        fraction: f64,
        rng: &mut domo_util::rng::Xoshiro256pp,
    ) -> NetworkTrace {
        assert!(
            (0.0..1.0).contains(&fraction),
            "loss fraction must be in [0, 1)"
        );
        let keep = self.packets.len() - ((self.packets.len() as f64) * fraction).round() as usize;
        let kept_idx = rng.sample_indices(self.packets.len(), keep.min(self.packets.len()));
        let packets: Vec<CollectedPacket> =
            kept_idx.iter().map(|&i| self.packets[i].clone()).collect();
        NetworkTrace {
            packets,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domo_util::rng::Xoshiro256pp;
    use domo_util::time::SimDuration;

    fn dummy_packet(origin: u16, seq: u32, hops: usize) -> CollectedPacket {
        let path: Vec<NodeId> = (0..hops)
            .rev()
            .map(|i| NodeId::new(if i == 0 { 0 } else { origin + i as u16 - 1 }))
            .collect();
        CollectedPacket {
            pid: PacketId::new(NodeId::new(origin), seq),
            gen_time: SimTime::from_millis(10),
            sink_arrival: SimTime::from_millis(40),
            path,
            sum_of_delays_ms: 12,
            e2e_ms: 30,
        }
    }

    fn dummy_trace(n_packets: usize) -> NetworkTrace {
        let packets: Vec<CollectedPacket> = (0..n_packets)
            .map(|i| dummy_packet(5, i as u32, 4))
            .collect();
        NetworkTrace {
            num_nodes: 10,
            seed: 1,
            ground_truth: packets
                .iter()
                .map(|p| (p.pid, vec![p.gen_time; p.path.len()]))
                .collect(),
            packets,
            node_logs: vec![Vec::new(); 10],
            positions: vec![Position::default(); 10],
            stats: SimStats::default(),
        }
    }

    #[test]
    fn e2e_delay_from_sink_quantities() {
        let p = dummy_packet(3, 0, 3);
        assert_eq!(p.e2e_delay(), SimDuration::from_millis(30));
        assert_eq!(p.path_len(), 3);
        assert_eq!(p.num_interior(), 1);
    }

    #[test]
    fn subtree_root_is_the_sinks_child() {
        let p = dummy_packet(3, 0, 3);
        assert_eq!(p.subtree_root(), Some(p.path[p.path.len() - 2]));
        // A one-hop path's subtree root is the source itself.
        let direct = dummy_packet(3, 1, 2);
        assert_eq!(direct.subtree_root(), Some(direct.path[0]));
        // Malformed single-node paths have no subtree.
        let mut broken = dummy_packet(3, 2, 3);
        broken.path.truncate(1);
        assert_eq!(broken.subtree_root(), None);
    }

    #[test]
    fn num_unknowns_counts_interior_hops() {
        let t = dummy_trace(5);
        // Each path has 4 nodes → 2 interior unknowns.
        assert_eq!(t.num_unknowns(), 10);
    }

    #[test]
    fn with_extra_loss_removes_requested_fraction() {
        let t = dummy_trace(100);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let lossy = t.with_extra_loss(0.3, &mut rng);
        assert_eq!(lossy.packets.len(), 70);
        // Ground truth still covers everything.
        assert_eq!(lossy.ground_truth.len(), 100);
        let zero = t.with_extra_loss(0.0, &mut rng);
        assert_eq!(zero.packets.len(), 100);
    }

    #[test]
    #[should_panic(expected = "loss fraction")]
    fn with_extra_loss_rejects_bad_fraction() {
        let t = dummy_trace(10);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let _ = t.with_extra_loss(1.0, &mut rng);
    }

    #[test]
    fn delivery_ratio_handles_idle_network() {
        assert_eq!(SimStats::default().delivery_ratio(), 1.0);
        let s = SimStats {
            generated: 10,
            delivered: 7,
            ..SimStats::default()
        };
        assert!((s.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn truth_lookup() {
        let t = dummy_trace(3);
        let pid = t.packets[0].pid;
        assert!(t.truth(pid).is_some());
        assert!(t.truth(PacketId::new(NodeId::new(99), 0)).is_none());
    }
}
