//! The MNT baseline (Keller, Beutel & Thiele, SenSys'12), as used for
//! comparison in the Domo paper (§II, §VI.A).
//!
//! MNT reconstructs, for each packet `p` and each hop, the two *local*
//! packets of the forwarding node that immediately precede and follow
//! `p` in the node's transmission order. Local packets carry their
//! generation times, and FIFO makes transmission order equal arrival
//! order, so the anchors bracket `p`'s arrival:
//! `gen(a) ≤ t_i(p) ≤ gen(b)`. MNT then improves the brackets by
//! correlating packets that share forwarders — the same FIFO
//! cross-tightening Domo's interval oracle performs (without Domo's
//! sum-of-delays information, which MNT does not collect).
//!
//! ## Idealization
//!
//! Real MNT infers each node's transmission order from per-packet anchor
//! fields and loses packets whose inference is ambiguous. This
//! implementation grants MNT the *correct* transmission order (taken
//! from the nodes' local logs), which can only make the baseline
//! stronger; Domo's measured advantage is therefore conservative.
//! DESIGN.md records the substitution.

use domo_core::interval::{propagate_from_seed, Intervals};
use domo_core::view::{TimeRef, TraceView};
use domo_net::{LogEventKind, NetworkTrace, PacketId};
use std::collections::HashMap;

/// How MNT learns each node's transmission order (see the module docs
/// on idealization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorOracle {
    /// The idealized baseline: the correct per-node transmission order,
    /// read from the simulator's node logs. Upper-bounds what real MNT
    /// inference could achieve.
    TrueOrder,
    /// Sink-side only: an anchor is used only when the ordering between
    /// the local packet and the bracketed pass-through is *provable*
    /// from observables (the same decidability test Domo's oracle
    /// uses). Fewer anchors → wider brackets, but nothing is assumed.
    DecidedOnly,
}

/// Configuration of the MNT baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MntConfig {
    /// Minimum per-hop software delay ω (ms) — same meaning as Domo's.
    pub omega_ms: f64,
    /// FIFO cross-tightening rounds for the improvement step.
    pub improvement_rounds: usize,
    /// Transmission-order oracle.
    pub oracle: AnchorOracle,
}

impl Default for MntConfig {
    fn default() -> Self {
        Self {
            omega_ms: 1.0,
            improvement_rounds: 2,
            oracle: AnchorOracle::TrueOrder,
        }
    }
}

/// MNT's output: per-unknown brackets plus midpoint estimates, indexed
/// like [`TraceView::vars`].
#[derive(Debug, Clone)]
pub struct MntResult {
    /// Lower bounds (ms).
    pub lb: Vec<f64>,
    /// Upper bounds (ms).
    pub ub: Vec<f64>,
    /// Midpoint estimates (the methodology Domo's evaluation uses to
    /// derive MNT estimated values, §VI.A).
    pub estimate: Vec<f64>,
}

impl MntResult {
    /// Mean bracket width (MNT's bound-accuracy metric).
    pub fn mean_width(&self) -> Option<f64> {
        let widths: Vec<f64> = self.lb.iter().zip(&self.ub).map(|(l, u)| u - l).collect();
        domo_util::stats::mean(&widths)
    }
}

/// Runs MNT over a trace.
///
/// Reads the sink-side packet view plus the per-node *transmission
/// orders* (see the idealization note in the module docs). Never reads
/// per-hop ground-truth times.
///
/// # Panics
///
/// Panics if `view` was not built from `trace.packets` (indices must
/// agree).
pub fn run_mnt(trace: &NetworkTrace, view: &TraceView, cfg: &MntConfig) -> MntResult {
    assert_eq!(
        view.num_packets(),
        trace.packets.len(),
        "view must be built from the same trace"
    );

    let delivered: HashMap<PacketId, usize> = view
        .packets()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.pid, i))
        .collect();

    // Per node: delivered packets in transmission order, with a flag for
    // local packets (whose generation time anchors the brackets).
    let mut tx_order: Vec<Vec<usize>> = vec![Vec::new(); trace.node_logs.len()];
    for (node, log) in trace.node_logs.iter().enumerate() {
        for ev in log {
            if ev.kind == LogEventKind::Send {
                if let Some(&pi) = delivered.get(&ev.pid) {
                    tx_order[node].push(pi);
                }
            }
        }
    }

    // Seed brackets: order-constraint seeds intersected with the local
    // anchor brackets.
    let n = view.num_vars();
    let mut lb = vec![f64::NEG_INFINITY; n];
    let mut ub = vec![f64::INFINITY; n];
    for (var, hr) in view.vars().iter().enumerate() {
        let p = view.packet(hr.packet);
        let gen = TraceView::ms(p.gen_time);
        let sink = TraceView::ms(p.sink_arrival);
        let hops_after = (p.path.len() - 1 - hr.hop) as f64;
        lb[var] = gen + cfg.omega_ms * hr.hop as f64;
        ub[var] = sink - cfg.omega_ms * hops_after;
    }

    match cfg.oracle {
        AnchorOracle::TrueOrder => {
            apply_true_order_anchors(view, &tx_order, &mut lb, &mut ub);
        }
        AnchorOracle::DecidedOnly => {
            apply_decided_anchors(view, cfg, &mut lb, &mut ub);
        }
    }

    // Repair any bracket inverted by quantization artifacts.
    for var in 0..n {
        if lb[var] > ub[var] {
            let mid = 0.5 * (lb[var] + ub[var]);
            lb[var] = mid;
            ub[var] = mid;
        }
    }

    // Improvement step: FIFO cross-tightening between packets sharing
    // forwarders (no sum-of-delays — MNT has none).
    let improved = propagate_from_seed(
        view,
        cfg.omega_ms,
        cfg.improvement_rounds,
        Intervals { lb, ub },
    );

    let estimate: Vec<f64> = (0..n).map(|v| improved.midpoint(v)).collect();
    MntResult {
        lb: improved.lb,
        ub: improved.ub,
        estimate,
    }
}

/// Brackets from the idealized (true transmission order) oracle.
fn apply_true_order_anchors(
    view: &TraceView,
    tx_order: &[Vec<usize>],
    lb: &mut [f64],
    ub: &mut [f64],
) {
    for (node, order) in tx_order.iter().enumerate() {
        if order.is_empty() {
            continue;
        }
        for (pos, &pi) in order.iter().enumerate() {
            // Which hop of pi is this node?
            let Some(hop) = view
                .packet(pi)
                .path
                .iter()
                .position(|nd| nd.index() == node)
            else {
                continue;
            };
            let TimeRef::Var(var) = view.time_ref(pi, hop) else {
                continue; // known endpoint — nothing to bracket
            };
            // Preceding local anchor: arrival(pi) ≥ gen(a).
            for &a in order[..pos].iter().rev() {
                if view.packet(a).pid.origin.index() == node {
                    let anchor = TraceView::ms(view.packet(a).gen_time);
                    lb[var] = lb[var].max(anchor);
                    break;
                }
            }
            // Following local anchor: arrival(pi) ≤ gen(b).
            for &b in &order[pos + 1..] {
                if view.packet(b).pid.origin.index() == node {
                    let anchor = TraceView::ms(view.packet(b).gen_time);
                    ub[var] = ub[var].min(anchor);
                    break;
                }
            }
        }
    }
}

/// Brackets using only orderings provable from sink-side observables.
fn apply_decided_anchors(view: &TraceView, cfg: &MntConfig, lb: &mut [f64], ub: &mut [f64]) {
    use domo_core::interval::decided_order;
    // An order-only interval seed serves as the decidability oracle
    // (no FIFO rounds: anchors must not assume what they prove).
    let seed = domo_core::interval::propagate(view, cfg.omega_ms, 0);
    for node in view.forwarding_nodes().collect::<Vec<_>>() {
        // Local packets of this node, sorted by generation time.
        let mut locals: Vec<(f64, usize)> = view
            .passthroughs(node)
            .iter()
            .filter(|&&(p, hop)| hop == 0 && view.packet(p).pid.origin == node)
            .map(|&(p, _)| (TraceView::ms(view.packet(p).gen_time), p))
            .collect();
        locals.sort_by(|a, b| a.0.total_cmp(&b.0));
        if locals.is_empty() {
            continue;
        }
        for &(p, hop) in view.passthroughs(node) {
            let TimeRef::Var(var) = view.time_ref(p, hop) else {
                continue;
            };
            // Tightest provable lower anchor: latest local `a` with
            // a-before-p decided.
            for &(gen_a, a) in locals.iter().rev() {
                if a == p {
                    continue;
                }
                if decided_order(view, &seed, (a, 0), (p, hop)) == Some(true) {
                    lb[var] = lb[var].max(gen_a);
                    break;
                }
            }
            // Tightest provable upper anchor: earliest local `b` with
            // p-before-b decided.
            for &(gen_b, bpk) in &locals {
                if bpk == p {
                    continue;
                }
                if decided_order(view, &seed, (p, hop), (bpk, 0)) == Some(true) {
                    ub[var] = ub[var].min(gen_b);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domo_net::{run_simulation, NetworkConfig};

    fn setup(seed: u64) -> (NetworkTrace, TraceView) {
        let trace = run_simulation(&NetworkConfig::small(25, seed));
        let view = TraceView::new(trace.packets.clone());
        (trace, view)
    }

    #[test]
    fn brackets_contain_ground_truth() {
        let (trace, view) = setup(51);
        let res = run_mnt(&trace, &view, &MntConfig::default());
        let mut checked = 0;
        for (var, hr) in view.vars().iter().enumerate() {
            let truth = trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
            assert!(
                truth >= res.lb[var] - 1e-6 && truth <= res.ub[var] + 1e-6,
                "truth {truth} outside MNT bracket [{}, {}]",
                res.lb[var],
                res.ub[var]
            );
            checked += 1;
        }
        assert!(checked > 100);
    }

    #[test]
    fn anchors_tighten_beyond_order_seeds() {
        let (trace, view) = setup(52);
        let res = run_mnt(&trace, &view, &MntConfig::default());
        // Order-only seed widths for comparison.
        let cfg = MntConfig::default();
        let mut tightened = 0;
        for (var, hr) in view.vars().iter().enumerate() {
            let p = view.packet(hr.packet);
            let seed_width = (TraceView::ms(p.sink_arrival)
                - cfg.omega_ms * (p.path.len() - 1 - hr.hop) as f64)
                - (TraceView::ms(p.gen_time) + cfg.omega_ms * hr.hop as f64);
            let width = res.ub[var] - res.lb[var];
            assert!(width <= seed_width + 1e-6);
            if width < seed_width - 0.5 {
                tightened += 1;
            }
        }
        assert!(
            tightened > 0,
            "local anchors must tighten at least some brackets"
        );
    }

    #[test]
    fn estimates_are_midpoints() {
        let (trace, view) = setup(53);
        let res = run_mnt(&trace, &view, &MntConfig::default());
        for v in 0..view.num_vars() {
            assert!((res.estimate[v] - 0.5 * (res.lb[v] + res.ub[v])).abs() < 1e-9);
        }
        assert!(res.mean_width().unwrap() > 0.0);
    }

    #[test]
    fn decided_only_oracle_is_sound_but_wider() {
        let (trace, view) = setup(55);
        let idealized = run_mnt(&trace, &view, &MntConfig::default());
        let inferred = run_mnt(
            &trace,
            &view,
            &MntConfig {
                oracle: AnchorOracle::DecidedOnly,
                ..MntConfig::default()
            },
        );
        // Soundness: truth inside the inferred brackets everywhere.
        for (var, hr) in view.vars().iter().enumerate() {
            let truth = trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
            assert!(
                truth >= inferred.lb[var] - 1e-6 && truth <= inferred.ub[var] + 1e-6,
                "inferred bracket must contain truth"
            );
        }
        // The sink-side oracle cannot beat the idealized one on average.
        assert!(
            inferred.mean_width().unwrap() >= idealized.mean_width().unwrap() - 1e-9,
            "inferred {:.2} vs idealized {:.2}",
            inferred.mean_width().unwrap(),
            idealized.mean_width().unwrap()
        );
    }

    #[test]
    fn improvement_rounds_never_loosen() {
        let (trace, view) = setup(54);
        let none = run_mnt(
            &trace,
            &view,
            &MntConfig {
                improvement_rounds: 0,
                ..MntConfig::default()
            },
        );
        let some = run_mnt(&trace, &view, &MntConfig::default());
        for v in 0..view.num_vars() {
            assert!(some.lb[v] >= none.lb[v] - 1e-9);
            assert!(some.ub[v] <= none.ub[v] + 1e-9);
        }
    }
}
