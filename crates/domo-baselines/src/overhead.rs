//! The static overhead accounting behind the paper's Table I.
//!
//! Message overhead is a property of the packet formats; node memory and
//! computation classes come from the papers' implementations. PC-side
//! computation is *measured* by the experiment harness; this module only
//! carries the static rows.

/// Qualitative overhead classes used by Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadClass {
    /// Negligible (a few arithmetic operations / bytes).
    Low,
    /// Noticeable but tractable on commodity hardware.
    Modest,
    /// A real resource burden.
    High,
}

impl std::fmt::Display for OverheadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverheadClass::Low => write!(f, "low"),
            OverheadClass::Modest => write!(f, "modest"),
            OverheadClass::High => write!(f, "high"),
        }
    }
}

/// One approach's overhead row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverheadRow {
    /// Approach name.
    pub approach: &'static str,
    /// Bytes added to every data packet.
    pub message_bytes: u32,
    /// Node-side computation class.
    pub node_computation: OverheadClass,
    /// PC-side computation class.
    pub pc_computation: OverheadClass,
    /// Node-side memory class.
    pub node_memory: OverheadClass,
}

/// Domo's row: 2-byte sum-of-delays + 2-byte delay timestamp.
pub fn domo_row() -> OverheadRow {
    OverheadRow {
        approach: "Domo",
        message_bytes: 4,
        node_computation: OverheadClass::Low,
        pc_computation: OverheadClass::Modest,
        node_memory: OverheadClass::Low,
    }
}

/// MNT's row: 2-byte delay timestamp + 2-byte first-hop receiver id.
pub fn mnt_row() -> OverheadRow {
    OverheadRow {
        approach: "MNT",
        message_bytes: 4,
        node_computation: OverheadClass::Low,
        pc_computation: OverheadClass::Modest,
        node_memory: OverheadClass::Low,
    }
}

/// MessageTracing's row: no message overhead, but every send/receive is
/// written to local storage.
pub fn message_tracing_row() -> OverheadRow {
    OverheadRow {
        approach: "MsgTracing",
        message_bytes: 0,
        node_computation: OverheadClass::Low,
        pc_computation: OverheadClass::Low,
        node_memory: OverheadClass::High,
    }
}

/// All three rows in the paper's order.
pub fn table_rows() -> Vec<OverheadRow> {
    vec![domo_row(), mnt_row(), message_tracing_row()]
}

/// Measures MessageTracing's actual per-node log volume on a trace
/// (bytes, assuming 6 bytes per logged event: 2-byte origin, 4-byte
/// sequence number).
pub fn message_tracing_log_bytes(trace: &domo_net::NetworkTrace) -> Vec<usize> {
    trace.node_logs.iter().map(|log| log.len() * 6).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_the_paper() {
        let rows = table_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].message_bytes, 4);
        assert_eq!(rows[1].message_bytes, 4);
        assert_eq!(rows[2].message_bytes, 0);
        assert_eq!(rows[2].node_memory, OverheadClass::High);
        assert_eq!(rows[0].pc_computation, OverheadClass::Modest);
    }

    #[test]
    fn classes_render() {
        assert_eq!(OverheadClass::Low.to_string(), "low");
        assert_eq!(OverheadClass::Modest.to_string(), "modest");
        assert_eq!(OverheadClass::High.to_string(), "high");
    }

    #[test]
    fn log_bytes_scale_with_traffic() {
        let trace = domo_net::run_simulation(&domo_net::NetworkConfig::small(16, 71));
        let bytes = message_tracing_log_bytes(&trace);
        assert_eq!(bytes.len(), 16);
        // Relaying nodes log plenty.
        assert!(bytes.iter().sum::<usize>() > 1000);
    }
}
