//! The MessageTracing baseline (Sundaram & Eugster, DSN'13), as used for
//! comparison in the Domo paper (§II, §VI.A).
//!
//! MessageTracing records every packet a node sends or receives in the
//! node's local storage; an offline pass merges the logs and
//! reconstructs a partial order of send/receive events, which is then
//! linearized. It never produces numeric delays, so the paper compares
//! it with Domo on *event-order* accuracy: the average displacement
//! between a reconstructed order of arrival events and the ground-truth
//! order.
//!
//! The merge works on the happens-before structure the logs encode:
//! consecutive events in one node's log are ordered, and a packet's
//! receive at hop `i+1` *is* its send at hop `i` (one on-air instant),
//! which stitches the per-node chains into one DAG. A Kahn topological
//! sort with FIFO tie-breaking produces the linearization.

use domo_core::view::TraceView;
use domo_net::{LogEventKind, NetworkTrace, PacketId};
use std::collections::{HashMap, VecDeque};

/// One reconstructable event: packet `pid` arriving at hop `hop` of its
/// path (equivalently: its transmission by hop `hop − 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrivalEvent {
    /// The packet.
    pub pid: PacketId,
    /// Hop index along the packet's path (1‥|p|−1).
    pub hop: usize,
}

/// The linearized event order MessageTracing reconstructs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracingOrder {
    /// Events in reconstructed order.
    pub order: Vec<ArrivalEvent>,
}

/// Reconstructs the event order from the nodes' local logs.
///
/// Only events of delivered packets are retained (the evaluation scores
/// orders over the packets the sink knows about). Never reads
/// ground-truth timestamps.
pub fn reconstruct_order(trace: &NetworkTrace, view: &TraceView) -> TracingOrder {
    // Delivered packets and the hop index of each of their nodes.
    let mut hop_of: HashMap<(PacketId, usize), usize> = HashMap::new();
    let mut path_len: HashMap<PacketId, usize> = HashMap::new();
    for p in view.packets() {
        path_len.insert(p.pid, p.path.len());
        for (hop, node) in p.path.iter().enumerate() {
            hop_of.insert((p.pid, node.index()), hop);
        }
    }

    // Build event ids. A log entry maps to an arrival event:
    //  * Receive(p) at node n  → arrival (p, hop_of(n))
    //  * Send(p) at node n     → arrival (p, hop_of(n) + 1)
    // Send@n and Receive@next are the same event, merging the chains.
    let mut ids: HashMap<ArrivalEvent, usize> = HashMap::new();
    let mut events: Vec<ArrivalEvent> = Vec::new();
    let mut intern = |ev: ArrivalEvent| -> usize {
        *ids.entry(ev).or_insert_with(|| {
            events.push(ev);
            events.len() - 1
        })
    };

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (node, log) in trace.node_logs.iter().enumerate() {
        let mut prev: Option<usize> = None;
        for entry in log {
            let Some(&hop) = hop_of.get(&(entry.pid, node)) else {
                continue; // packet not delivered — outside the universe
            };
            let ev = match entry.kind {
                LogEventKind::Receive => ArrivalEvent {
                    pid: entry.pid,
                    hop,
                },
                LogEventKind::Send => ArrivalEvent {
                    pid: entry.pid,
                    hop: hop + 1,
                },
            };
            // Guard against a Send logged for a hop the packet did not
            // actually complete (drop after the log write).
            if ev.hop >= path_len.get(&ev.pid).copied().unwrap_or(0) {
                continue;
            }
            let id = intern(ev);
            if let Some(prev_id) = prev {
                if prev_id != id {
                    edges.push((prev_id, id));
                }
            }
            prev = Some(id);
        }
    }

    // Kahn topological sort, FIFO tie-breaking (the information the logs
    // do not encode — concurrent events — linearizes arbitrarily, which
    // is precisely where MessageTracing loses accuracy).
    let n = events.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &(a, b) in &edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(events[u]);
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    // Cycles cannot arise from consistent logs; if numerical/log
    // anomalies ever produced one, emit the remaining events in id
    // order so the result is still a permutation.
    if order.len() < n {
        for (i, &d) in indeg.iter().enumerate() {
            if d > 0 {
                order.push(events[i]);
            }
        }
    }
    TracingOrder { order }
}

/// The ground-truth order of the same events (for scoring only).
pub fn truth_order(trace: &NetworkTrace, view: &TraceView) -> Vec<ArrivalEvent> {
    let mut timed: Vec<(f64, ArrivalEvent)> = Vec::new();
    for p in view.packets() {
        // Every packet in a view is a delivered one; a missing truth
        // entry (foreign trace) simply contributes no events.
        let Some(times) = trace.truth(p.pid) else {
            continue;
        };
        for (hop, t) in times.iter().enumerate().take(p.path.len()).skip(1) {
            timed.push((t.as_millis_f64(), ArrivalEvent { pid: p.pid, hop }));
        }
    }
    timed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    timed.into_iter().map(|(_, e)| e).collect()
}

/// Orders the same events by Domo's (or any) estimated arrival times.
///
/// `time_of` maps `(packet index, hop)` to an estimated time; events
/// without an estimate are skipped.
pub fn order_by_estimates(
    view: &TraceView,
    mut time_of: impl FnMut(usize, usize) -> Option<f64>,
) -> Vec<ArrivalEvent> {
    let mut timed: Vec<(f64, ArrivalEvent)> = Vec::new();
    for (pi, p) in view.packets().iter().enumerate() {
        for hop in 1..p.path.len() {
            if let Some(t) = time_of(pi, hop) {
                timed.push((t, ArrivalEvent { pid: p.pid, hop }));
            }
        }
    }
    timed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    timed.into_iter().map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use domo_net::{run_simulation, NetworkConfig};
    use domo_util::stats::average_displacement;

    fn setup(seed: u64) -> (NetworkTrace, TraceView) {
        let trace = run_simulation(&NetworkConfig::small(25, seed));
        let view = TraceView::new(trace.packets.clone());
        (trace, view)
    }

    #[test]
    fn reconstruction_covers_delivered_events() {
        let (trace, view) = setup(61);
        let rec = reconstruct_order(&trace, &view);
        let truth = truth_order(&trace, &view);
        // Every truth event must be reconstructed (logs cover them all).
        assert_eq!(rec.order.len(), truth.len());
        let mut rec_sorted = rec.order.clone();
        let mut truth_sorted = truth.clone();
        rec_sorted.sort();
        truth_sorted.sort();
        assert_eq!(rec_sorted, truth_sorted, "same event universe");
    }

    #[test]
    fn reconstruction_respects_per_packet_order() {
        let (trace, view) = setup(62);
        let rec = reconstruct_order(&trace, &view);
        let mut pos: HashMap<ArrivalEvent, usize> = HashMap::new();
        for (i, &e) in rec.order.iter().enumerate() {
            pos.insert(e, i);
        }
        // A packet's hop h must precede its hop h+1.
        for p in view.packets() {
            for hop in 1..p.path.len() - 1 {
                let a = pos[&ArrivalEvent { pid: p.pid, hop }];
                let b = pos[&ArrivalEvent {
                    pid: p.pid,
                    hop: hop + 1,
                }];
                assert!(a < b, "hop order violated for {}", p.pid);
            }
        }
    }

    #[test]
    fn displacement_is_moderate_but_nonzero() {
        let (trace, view) = setup(63);
        let rec = reconstruct_order(&trace, &view);
        let truth = truth_order(&trace, &view);
        let d = average_displacement(&truth, &rec.order).unwrap();
        // Logs under-constrain concurrency: some displacement expected,
        // but the happens-before edges keep it far from random.
        assert!(d > 0.0, "perfect order would be suspicious");
        let random_scale = truth.len() as f64 / 3.0;
        assert!(d < random_scale, "displacement {d} looks random");
    }

    #[test]
    fn ordering_by_exact_truth_gives_zero_displacement() {
        let (trace, view) = setup(64);
        let truth = truth_order(&trace, &view);
        let ordered = order_by_estimates(&view, |pi, hop| {
            let pid = view.packet(pi).pid;
            Some(trace.truth(pid).unwrap()[hop].as_millis_f64())
        });
        let d = average_displacement(&truth, &ordered).unwrap();
        assert_eq!(d, 0.0);
    }
}
