//! Reimplementations of the two comparators the Domo paper evaluates
//! against (§VI), plus the static overhead rows of Table I.
//!
//! * [`mnt`] — MNT (Keller et al., SenSys'12): per-hop arrival brackets
//!   from local anchor packets, improved by FIFO correlation; estimated
//!   values are bracket midpoints (the paper's §VI.A methodology).
//! * [`message_tracing`] — MessageTracing (Sundaram & Eugster, DSN'13):
//!   local send/receive logs merged into a happens-before DAG and
//!   linearized; scored by average displacement against the true event
//!   order.
//! * [`overhead`] — the static rows of Table I.
//!
//! # Examples
//!
//! ```
//! use domo_baselines::mnt::{run_mnt, MntConfig};
//! use domo_core::view::TraceView;
//!
//! let trace = domo_net::run_simulation(&domo_net::NetworkConfig::small(9, 1));
//! let view = TraceView::new(trace.packets.clone());
//! let result = run_mnt(&trace, &view, &MntConfig::default());
//! assert_eq!(result.lb.len(), view.num_vars());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message_tracing;
pub mod mnt;
pub mod overhead;

pub use message_tracing::{
    order_by_estimates, reconstruct_order, truth_order, ArrivalEvent, TracingOrder,
};
pub use mnt::{run_mnt, AnchorOracle, MntConfig, MntResult};
pub use overhead::{table_rows, OverheadClass, OverheadRow};
