//! Problem descriptions accepted by the ADMM solver.
//!
//! The solver handles *cone quadratic programs*:
//!
//! ```text
//! minimize    ½ xᵀ P x + qᵀ x
//! subject to  l ≤ A x ≤ u                 (box rows)
//!             mat(xₛ) ⪰ 0  for each PSD block  (lifted SDP rows)
//! ```
//!
//! where each [`PsdBlock`] names the subset of variables that form a
//! symmetric matrix (in packed svec order). Plain QPs and LPs are the
//! special cases with no blocks / zero `P`.

use crate::svec::svec_len;
use domo_linalg::CsrMatrix;

/// A semidefinite block: the variables listed in `vars` (packed svec
/// order, see [`crate::svec`]) must form a positive-semidefinite matrix.
///
/// # Examples
///
/// ```
/// use domo_solver::PsdBlock;
///
/// // Variables 3, 4, 5 form the 2×2 matrix [[x3, x4], [x4, x5]] ⪰ 0.
/// let block = PsdBlock::new(2, vec![3, 4, 5]).unwrap();
/// assert_eq!(block.dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsdBlock {
    dim: usize,
    vars: Vec<usize>,
}

impl PsdBlock {
    /// Creates a block of matrix dimension `dim` whose packed upper
    /// triangle is the listed variables.
    ///
    /// # Errors
    ///
    /// Returns an error if `vars.len() != dim(dim+1)/2`.
    pub fn new(dim: usize, vars: Vec<usize>) -> Result<Self, ProblemError> {
        if vars.len() != svec_len(dim) {
            return Err(ProblemError::BadPsdBlock {
                dim,
                expected: svec_len(dim),
                got: vars.len(),
            });
        }
        Ok(Self { dim, vars })
    }

    /// Matrix dimension of the block.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Variable indices in packed svec order.
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }
}

/// A cone quadratic program.
///
/// Use [`ConeQp::new`] for a plain box-constrained QP and
/// [`ConeQp::with_psd_blocks`] to add semidefinite blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeQp {
    /// Quadratic objective term (n × n, only the symmetric part is used).
    pub p: CsrMatrix,
    /// Linear objective term (length n).
    pub q: Vec<f64>,
    /// Constraint matrix (m × n).
    pub a: CsrMatrix,
    /// Row lower bounds (length m); use `f64::NEG_INFINITY` for none.
    pub l: Vec<f64>,
    /// Row upper bounds (length m); use `f64::INFINITY` for none.
    pub u: Vec<f64>,
    /// Semidefinite blocks over subsets of the variables.
    pub psd_blocks: Vec<PsdBlock>,
}

/// Validation errors for [`ConeQp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// `P` is not n × n.
    BadObjectiveShape {
        /// Number of variables implied by `q`.
        n: usize,
        /// Rows of the offending `P`.
        rows: usize,
        /// Columns of the offending `P`.
        cols: usize,
    },
    /// `A`, `l`, `u` dimensions disagree.
    BadConstraintShape {
        /// Number of variables implied by `q`.
        n: usize,
        /// Description of the mismatch.
        detail: String,
    },
    /// Some `l[i] > u[i]`.
    EmptyBox {
        /// Offending row.
        row: usize,
    },
    /// A PSD block's variable list has the wrong length.
    BadPsdBlock {
        /// Declared matrix dimension.
        dim: usize,
        /// Expected svec length.
        expected: usize,
        /// Actual list length.
        got: usize,
    },
    /// A PSD block references a variable ≥ n.
    PsdVarOutOfRange {
        /// Offending variable index.
        var: usize,
        /// Number of variables.
        n: usize,
    },
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::BadObjectiveShape { n, rows, cols } => {
                write!(f, "objective matrix is {rows}x{cols}, expected {n}x{n}")
            }
            ProblemError::BadConstraintShape { n, detail } => {
                write!(
                    f,
                    "constraint shapes inconsistent for {n} variables: {detail}"
                )
            }
            ProblemError::EmptyBox { row } => write!(f, "row {row} has l > u"),
            ProblemError::BadPsdBlock { dim, expected, got } => {
                write!(f, "PSD block of dim {dim} needs {expected} vars, got {got}")
            }
            ProblemError::PsdVarOutOfRange { var, n } => {
                write!(f, "PSD block references variable {var}, but only {n} exist")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

impl ConeQp {
    /// Creates a box-constrained QP (no PSD blocks).
    ///
    /// # Errors
    ///
    /// Returns a [`ProblemError`] describing any dimension mismatch or an
    /// empty box row.
    pub fn new(
        p: CsrMatrix,
        q: Vec<f64>,
        a: CsrMatrix,
        l: Vec<f64>,
        u: Vec<f64>,
    ) -> Result<Self, ProblemError> {
        Self::with_psd_blocks(p, q, a, l, u, Vec::new())
    }

    /// Creates a cone QP with semidefinite blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`ProblemError`] describing any dimension mismatch, an
    /// empty box row, or an out-of-range PSD variable.
    pub fn with_psd_blocks(
        p: CsrMatrix,
        q: Vec<f64>,
        a: CsrMatrix,
        l: Vec<f64>,
        u: Vec<f64>,
        psd_blocks: Vec<PsdBlock>,
    ) -> Result<Self, ProblemError> {
        let n = q.len();
        if p.rows() != n || p.cols() != n {
            return Err(ProblemError::BadObjectiveShape {
                n,
                rows: p.rows(),
                cols: p.cols(),
            });
        }
        if a.cols() != n {
            return Err(ProblemError::BadConstraintShape {
                n,
                detail: format!("A has {} columns", a.cols()),
            });
        }
        if a.rows() != l.len() || a.rows() != u.len() {
            return Err(ProblemError::BadConstraintShape {
                n,
                detail: format!(
                    "A has {} rows but l has {} and u has {}",
                    a.rows(),
                    l.len(),
                    u.len()
                ),
            });
        }
        for (i, (&lo, &hi)) in l.iter().zip(&u).enumerate() {
            if lo > hi {
                return Err(ProblemError::EmptyBox { row: i });
            }
        }
        for b in &psd_blocks {
            if let Some(&v) = b.vars().iter().find(|&&v| v >= n) {
                return Err(ProblemError::PsdVarOutOfRange { var: v, n });
            }
        }
        Ok(Self {
            p,
            q,
            a,
            l,
            u,
            psd_blocks,
        })
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    /// Number of box-constraint rows.
    pub fn num_box_rows(&self) -> usize {
        self.a.rows()
    }

    /// Evaluates the objective `½ xᵀPx + qᵀx` at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "objective point has wrong length");
        0.5 * domo_linalg::dot(x, &self.p.matvec(x)) + domo_linalg::dot(&self.q, x)
    }

    /// Maximum box-constraint violation at `x` (0 when feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn box_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.matvec(x);
        let mut worst = 0.0f64;
        for ((&v, &lo), &hi) in ax.iter().zip(&self.l).zip(&self.u) {
            worst = worst.max(lo - v).max(v - hi);
        }
        worst
    }
}

/// Convenience builder for assembling sparse QPs row by row.
///
/// # Examples
///
/// ```
/// use domo_solver::QpBuilder;
///
/// // minimize (x0 − 1)² + (x1 − 2)²  s.t.  x0 + x1 ≤ 2, x ≥ 0.
/// let mut b = QpBuilder::new(2);
/// b.add_quadratic(0, 0, 2.0);
/// b.add_quadratic(1, 1, 2.0);
/// b.add_linear(0, -2.0);
/// b.add_linear(1, -4.0);
/// b.add_row(&[(0, 1.0), (1, 1.0)], f64::NEG_INFINITY, 2.0);
/// b.add_row(&[(0, 1.0)], 0.0, f64::INFINITY);
/// b.add_row(&[(1, 1.0)], 0.0, f64::INFINITY);
/// let qp = b.build()?;
/// assert_eq!(qp.num_vars(), 2);
/// assert_eq!(qp.num_box_rows(), 3);
/// # Ok::<(), domo_solver::ProblemError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct QpBuilder {
    n: usize,
    p_triplets: Vec<(usize, usize, f64)>,
    q: Vec<f64>,
    a_triplets: Vec<(usize, usize, f64)>,
    l: Vec<f64>,
    u: Vec<f64>,
    psd_blocks: Vec<PsdBlock>,
}

impl QpBuilder {
    /// Starts a problem over `n` variables with zero objective.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            q: vec![0.0; n],
            ..Self::default()
        }
    }

    /// Adds `coef` to `P[i, j]` **and** `P[j, i]` when `i ≠ j` (keeping
    /// `P` symmetric); adds to the diagonal once when `i == j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn add_quadratic(&mut self, i: usize, j: usize, coef: f64) -> &mut Self {
        assert!(i < self.n && j < self.n, "quadratic index out of range");
        if i == j {
            self.p_triplets.push((i, i, coef));
        } else {
            self.p_triplets.push((i, j, coef));
            self.p_triplets.push((j, i, coef));
        }
        self
    }

    /// Adds `coef` to the linear objective on variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_linear(&mut self, i: usize, coef: f64) -> &mut Self {
        assert!(i < self.n, "linear index out of range");
        self.q[i] += coef;
        self
    }

    /// Adds a constraint row `lo ≤ Σ coefᵢ·x_varᵢ ≤ hi` and returns its
    /// row index.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range.
    pub fn add_row(&mut self, entries: &[(usize, f64)], lo: f64, hi: f64) -> usize {
        let row = self.l.len();
        for &(var, coef) in entries {
            assert!(var < self.n, "row references variable {var} out of range");
            self.a_triplets.push((row, var, coef));
        }
        self.l.push(lo);
        self.u.push(hi);
        row
    }

    /// Pins variable `i` to the exact value `v` (an equality row).
    pub fn fix_variable(&mut self, i: usize, v: f64) -> usize {
        self.add_row(&[(i, 1.0)], v, v)
    }

    /// Adds a PSD block over existing variables.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::BadPsdBlock`] if the list length does not
    /// match the dimension.
    pub fn add_psd_block(&mut self, dim: usize, vars: Vec<usize>) -> Result<(), ProblemError> {
        self.psd_blocks.push(PsdBlock::new(dim, vars)?);
        Ok(())
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraint rows added so far.
    pub fn num_rows(&self) -> usize {
        self.l.len()
    }

    /// Finalizes the problem.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`ConeQp::with_psd_blocks`].
    pub fn build(self) -> Result<ConeQp, ProblemError> {
        let m = self.l.len();
        ConeQp::with_psd_blocks(
            CsrMatrix::from_triplets(self.n, self.n, &self.p_triplets),
            self.q,
            CsrMatrix::from_triplets(m, self.n, &self.a_triplets),
            self.l,
            self.u,
            self.psd_blocks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psd_block_validates_length() {
        assert!(PsdBlock::new(2, vec![0, 1, 2]).is_ok());
        assert!(matches!(
            PsdBlock::new(2, vec![0, 1]),
            Err(ProblemError::BadPsdBlock {
                expected: 3,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn cone_qp_validates_shapes() {
        let p = CsrMatrix::zeros(2, 2);
        let a = CsrMatrix::zeros(1, 2);
        assert!(ConeQp::new(p.clone(), vec![0.0; 2], a.clone(), vec![0.0], vec![1.0]).is_ok());

        let bad_p = CsrMatrix::zeros(3, 2);
        assert!(matches!(
            ConeQp::new(bad_p, vec![0.0; 2], a.clone(), vec![0.0], vec![1.0]),
            Err(ProblemError::BadObjectiveShape { .. })
        ));

        assert!(matches!(
            ConeQp::new(
                p.clone(),
                vec![0.0; 2],
                a.clone(),
                vec![0.0, 0.0],
                vec![1.0]
            ),
            Err(ProblemError::BadConstraintShape { .. })
        ));

        assert!(matches!(
            ConeQp::new(p, vec![0.0; 2], a, vec![2.0], vec![1.0]),
            Err(ProblemError::EmptyBox { row: 0 })
        ));
    }

    #[test]
    fn cone_qp_rejects_out_of_range_block_vars() {
        let p = CsrMatrix::zeros(2, 2);
        let a = CsrMatrix::zeros(0, 2);
        let block = PsdBlock::new(1, vec![5]).unwrap();
        assert!(matches!(
            ConeQp::with_psd_blocks(p, vec![0.0; 2], a, vec![], vec![], vec![block]),
            Err(ProblemError::PsdVarOutOfRange { var: 5, n: 2 })
        ));
    }

    #[test]
    fn objective_and_violation_evaluate() {
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 0, 2.0);
        b.add_linear(1, 1.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], 0.0, 1.0);
        let qp = b.build().unwrap();
        // f(x) = x0² + x1.
        assert_eq!(qp.objective(&[2.0, 3.0]), 7.0);
        assert_eq!(qp.box_violation(&[0.5, 0.25]), 0.0);
        assert_eq!(qp.box_violation(&[2.0, 0.0]), 1.0);
        assert_eq!(qp.box_violation(&[-1.0, 0.0]), 1.0);
    }

    #[test]
    fn builder_accumulates_linear_terms() {
        let mut b = QpBuilder::new(1);
        b.add_linear(0, 1.0);
        b.add_linear(0, 2.0);
        let qp = b.build().unwrap();
        assert_eq!(qp.q, vec![3.0]);
    }

    #[test]
    fn builder_quadratic_symmetrizes_off_diagonals() {
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 1, 3.0);
        let qp = b.build().unwrap();
        let dense = qp.p.to_dense();
        assert_eq!(dense[(0, 1)], 3.0);
        assert_eq!(dense[(1, 0)], 3.0);
    }

    #[test]
    fn fix_variable_creates_equality_row() {
        let mut b = QpBuilder::new(1);
        let row = b.fix_variable(0, 7.0);
        assert_eq!(row, 0);
        let qp = b.build().unwrap();
        assert_eq!(qp.l, vec![7.0]);
        assert_eq!(qp.u, vec![7.0]);
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = ProblemError::EmptyBox { row: 3 };
        assert!(e.to_string().contains("row 3"));
        let e = ProblemError::PsdVarOutOfRange { var: 9, n: 4 };
        assert!(e.to_string().contains("variable 9"));
    }

    #[test]
    fn builder_row_indices_increment() {
        let mut b = QpBuilder::new(2);
        assert_eq!(b.add_row(&[(0, 1.0)], 0.0, 1.0), 0);
        assert_eq!(b.add_row(&[(1, 1.0)], 0.0, 1.0), 1);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.num_vars(), 2);
    }
}
