//! The ADMM solver for cone quadratic programs.
//!
//! This is an OSQP-style operator-splitting method extended with
//! semidefinite blocks. The iteration is
//!
//! ```text
//! x ← (P + σI + ρ MᵀM)⁻¹ (σ x − q + Mᵀ(ρ z − y))
//! v ← α·Mx + (1−α)·z
//! z ← Π_C(v + y/ρ)
//! y ← y + ρ (v − z)
//! ```
//!
//! where `M` stacks the box-constraint matrix `A` with one selector row
//! per svec coordinate of each PSD block, and `Π_C` clamps the box rows
//! to `[l, u]` and projects each block segment onto the PSD cone (via the
//! Jacobi eigensolver in `domo-linalg`). The KKT matrix is factored once
//! per problem (re-factored only when adaptive ρ steps far), which is
//! what makes the per-window solves in Domo fast.

use crate::problem::ConeQp;
use crate::svec::{project_psd_svec, svec_index, SQRT2};
use domo_linalg::{norm_inf, Cholesky, CsrMatrix, Matrix};
use domo_obs::{LazyCounter, LazyHistogram};
use std::time::{Duration, Instant};

// Per-solve telemetry; free when the global recorder is disabled.
static OBS_SOLVE_SECONDS: LazyHistogram = LazyHistogram::new("domo_solver_solve_seconds", &[]);
static OBS_ITERATIONS: LazyHistogram = LazyHistogram::new("domo_solver_iterations", &[]);
static OBS_PRIMAL_RESIDUAL: LazyHistogram = LazyHistogram::new("domo_solver_primal_residual", &[]);
static OBS_DUAL_RESIDUAL: LazyHistogram = LazyHistogram::new("domo_solver_dual_residual", &[]);
static OBS_SOLVES_SOLVED: LazyCounter =
    LazyCounter::new("domo_solver_solves_total", &[("status", "solved")]);
static OBS_SOLVES_MAXITER: LazyCounter =
    LazyCounter::new("domo_solver_solves_total", &[("status", "max_iterations")]);
static OBS_SOLVES_INFEASIBLE: LazyCounter = LazyCounter::new(
    "domo_solver_solves_total",
    &[("status", "primal_infeasible")],
);
static OBS_ERRORS: LazyCounter = LazyCounter::new("domo_solver_errors_total", &[]);
static OBS_POLISH_ACCEPTED: LazyCounter =
    LazyCounter::new("domo_solver_polish_total", &[("outcome", "accepted")]);
static OBS_POLISH_REJECTED: LazyCounter =
    LazyCounter::new("domo_solver_polish_total", &[("outcome", "rejected")]);

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    /// Penalty parameter ρ.
    pub rho: f64,
    /// Tikhonov parameter σ keeping the KKT matrix positive definite.
    pub sigma: f64,
    /// Over-relaxation α ∈ (0, 2).
    pub alpha: f64,
    /// Absolute tolerance.
    pub eps_abs: f64,
    /// Relative tolerance.
    pub eps_rel: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// How often (in iterations) residuals are checked.
    pub check_interval: usize,
    /// Enables adaptive ρ rescaling.
    pub adaptive_rho: bool,
    /// After ADMM terminates, attempt an active-set *polish*: solve the
    /// equality-constrained KKT system on the detected active rows and
    /// keep the refined point if it is feasible and no worse. Skipped
    /// for problems with PSD blocks (their active set is not a row
    /// subset).
    pub polish: bool,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            rho: 1.0,
            sigma: 1e-6,
            alpha: 1.6,
            eps_abs: 1e-6,
            eps_rel: 1e-6,
            max_iterations: 8000,
            check_interval: 25,
            adaptive_rho: true,
            polish: true,
        }
    }
}

/// Structural failures that prevent a solve from running at all — as
/// opposed to a [`Status`], which describes how a *completed* solve
/// terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// A setting is out of range (ρ ≤ 0, σ ≤ 0, α ∉ (0, 2), …).
    BadSettings(String),
    /// The warm-start vector has the wrong length.
    BadWarmStart {
        /// Number of variables of the problem.
        expected: usize,
        /// Length of the supplied warm start.
        got: usize,
    },
    /// The regularized KKT matrix could not be Cholesky-factored. This
    /// indicates non-finite problem data (a NaN/∞ coefficient) — for
    /// finite data the σ-shift keeps the matrix positive definite.
    FactorizationFailed,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::BadSettings(msg) => write!(f, "bad solver settings: {msg}"),
            SolverError::BadWarmStart { expected, got } => {
                write!(f, "warm start has length {got}, expected {expected}")
            }
            SolverError::FactorizationFailed => {
                write!(f, "KKT factorization failed (non-finite problem data?)")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Residuals met the tolerances.
    Solved,
    /// The iteration budget ran out; the returned iterate is the best
    /// effort and its residuals are reported in the solution.
    MaxIterations,
    /// A primal infeasibility certificate was found: no point satisfies
    /// the box rows (detected for problems without PSD blocks). The
    /// returned `y` contains the certificate direction.
    PrimalInfeasible,
}

/// The result of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Dual multipliers for the stacked constraint rows.
    pub y: Vec<f64>,
    /// Termination status.
    pub status: Status,
    /// Iterations performed.
    pub iterations: usize,
    /// Final primal residual (∞-norm).
    pub primal_residual: f64,
    /// Final dual residual (∞-norm).
    pub dual_residual: f64,
    /// Objective value at `x`.
    pub objective: f64,
    /// Wall-clock time of the solve.
    pub solve_time: Duration,
}

impl Solution {
    /// Returns `true` when the solver met its tolerances.
    pub fn is_solved(&self) -> bool {
        self.status == Status::Solved
    }
}

/// Solves a [`ConeQp`] with ADMM.
///
/// # Examples
///
/// ```
/// use domo_solver::{QpBuilder, solve, Settings};
///
/// // minimize (x − 3)² subject to 0 ≤ x ≤ 2  →  x* = 2.
/// let mut b = QpBuilder::new(1);
/// b.add_quadratic(0, 0, 2.0);
/// b.add_linear(0, -6.0);
/// b.add_row(&[(0, 1.0)], 0.0, 2.0);
/// let sol = solve(&b.build()?, &Settings::default());
/// assert!(sol.is_solved());
/// assert!((sol.x[0] - 2.0).abs() < 1e-4);
/// # Ok::<(), domo_solver::ProblemError>(())
/// ```
pub fn solve(problem: &ConeQp, settings: &Settings) -> Solution {
    solve_warm(problem, settings, None)
}

/// Non-panicking variant of [`solve`].
///
/// # Errors
///
/// Returns a [`SolverError`] for out-of-range settings or a failed KKT
/// factorization (non-finite problem data).
pub fn try_solve(problem: &ConeQp, settings: &Settings) -> Result<Solution, SolverError> {
    try_solve_warm(problem, settings, None)
}

/// Solves a [`ConeQp`], optionally warm-starting from a previous primal
/// point (duals are reset).
///
/// # Panics
///
/// Panics if the warm-start vector has the wrong length, if a setting is
/// out of range (ρ ≤ 0, σ ≤ 0, α ∉ (0,2)), or if the (regularized) KKT
/// matrix cannot be factored, which cannot happen for a valid [`ConeQp`]
/// with finite data. Use [`try_solve_warm`] to get these conditions as
/// a [`SolverError`] instead.
pub fn solve_warm(problem: &ConeQp, settings: &Settings, warm_x: Option<&[f64]>) -> Solution {
    match try_solve_warm(problem, settings, warm_x) {
        Ok(sol) => sol,
        Err(e) => panic!("{e}"),
    }
}

/// Non-panicking variant of [`solve_warm`].
///
/// # Errors
///
/// Returns a [`SolverError`] for out-of-range settings, a wrong-length
/// warm start, or a failed KKT factorization (non-finite problem data).
pub fn try_solve_warm(
    problem: &ConeQp,
    settings: &Settings,
    warm_x: Option<&[f64]>,
) -> Result<Solution, SolverError> {
    let result = try_solve_warm_inner(problem, settings, warm_x);
    match &result {
        Ok(sol) => {
            OBS_SOLVE_SECONDS.observe(sol.solve_time.as_secs_f64());
            OBS_ITERATIONS.observe(sol.iterations as f64);
            if sol.primal_residual.is_finite() {
                OBS_PRIMAL_RESIDUAL.observe(sol.primal_residual);
            }
            if sol.dual_residual.is_finite() {
                OBS_DUAL_RESIDUAL.observe(sol.dual_residual);
            }
            match sol.status {
                Status::Solved => OBS_SOLVES_SOLVED.inc(),
                Status::MaxIterations => OBS_SOLVES_MAXITER.inc(),
                Status::PrimalInfeasible => OBS_SOLVES_INFEASIBLE.inc(),
            }
        }
        Err(_) => OBS_ERRORS.inc(),
    }
    result
}

fn try_solve_warm_inner(
    problem: &ConeQp,
    settings: &Settings,
    warm_x: Option<&[f64]>,
) -> Result<Solution, SolverError> {
    if settings.rho.is_nan() || settings.rho <= 0.0 {
        return Err(SolverError::BadSettings("rho must be positive".into()));
    }
    if settings.sigma.is_nan() || settings.sigma <= 0.0 {
        return Err(SolverError::BadSettings("sigma must be positive".into()));
    }
    if !(settings.alpha > 0.0 && settings.alpha < 2.0) {
        return Err(SolverError::BadSettings("alpha must lie in (0, 2)".into()));
    }

    let start = Instant::now();
    let n = problem.num_vars();
    let m_box = problem.num_box_rows();

    // ---- Stack M = [A; S] where S holds PSD selector rows. ----
    let mut m_triplets: Vec<(usize, usize, f64)> = Vec::new();
    for r in 0..m_box {
        for (c, v) in problem.a.row_entries(r) {
            m_triplets.push((r, c, v));
        }
    }
    // Each PSD block contributes svec-scaled selector rows; remember the
    // (start, dim) of each block segment in the stacked rows.
    let mut block_segments: Vec<(usize, usize)> = Vec::new();
    let mut row = m_box;
    for block in &problem.psd_blocks {
        let dim = block.dim();
        block_segments.push((row, dim));
        for j in 0..dim {
            for i in 0..=j {
                let var = block.vars()[svec_index(i, j)];
                let coef = if i == j { 1.0 } else { SQRT2 };
                m_triplets.push((row, var, coef));
                row += 1;
            }
        }
    }
    let m_total = row;
    let m = CsrMatrix::from_triplets(m_total, n, &m_triplets);

    if n == 0 {
        return Ok(Solution {
            x: Vec::new(),
            y: vec![0.0; m_total],
            status: Status::Solved,
            iterations: 0,
            primal_residual: 0.0,
            dual_residual: 0.0,
            objective: 0.0,
            solve_time: start.elapsed(),
        });
    }

    let mut rho = settings.rho;

    // ---- Factor K = P_sym + σI + ρ MᵀM (dense Cholesky). ----
    let p_dense = {
        let mut p = problem.p.to_dense();
        p.symmetrize();
        p
    };
    let factor_kkt = |rho: f64| -> Result<Cholesky, SolverError> {
        let mut k = m.gram_with_shift(&vec![0.0; n]).scale(rho);
        k = &k + &p_dense;
        k.shift_diagonal(settings.sigma);
        Cholesky::factor(&k).map_err(|_| SolverError::FactorizationFailed)
    };
    let mut kkt = factor_kkt(rho)?;

    // ---- Projection onto C = [l,u] × PSD × … ----
    let project = |v: &mut [f64]| {
        // `l`/`u` have `m_box` entries, so the zip stops at the box rows.
        for ((vi, &lo), &hi) in v.iter_mut().zip(&problem.l).zip(&problem.u) {
            *vi = vi.clamp(lo, hi);
        }
        for &(seg_start, dim) in &block_segments {
            let len = crate::svec::svec_len(dim);
            let seg = &v[seg_start..seg_start + len];
            let projected = project_psd_svec(seg);
            v[seg_start..seg_start + len].copy_from_slice(&projected);
        }
    };

    // ---- Iterate. ----
    let mut x = match warm_x {
        Some(w) => {
            if w.len() != n {
                return Err(SolverError::BadWarmStart {
                    expected: n,
                    got: w.len(),
                });
            }
            w.to_vec()
        }
        None => vec![0.0; n],
    };
    let mut z = {
        let mut z0 = m.matvec(&x);
        project(&mut z0);
        z0
    };
    let mut y = vec![0.0; m_total];

    let mut status = Status::MaxIterations;
    let mut iterations = 0;
    let mut primal_residual = f64::INFINITY;
    let mut dual_residual = f64::INFINITY;
    let mut y_at_last_check = y.clone();

    for iter in 1..=settings.max_iterations {
        iterations = iter;

        // x-update.
        let mut rhs = vec![0.0; n];
        for i in 0..n {
            rhs[i] = settings.sigma * x[i] - problem.q[i];
        }
        let mut w = vec![0.0; m_total];
        for i in 0..m_total {
            w[i] = rho * z[i] - y[i];
        }
        let mtw = m.matvec_t(&w);
        for i in 0..n {
            rhs[i] += mtw[i];
        }
        x = kkt.solve(&rhs);

        // Relaxed z/y updates.
        let mx = m.matvec(&x);
        let z_prev = z.clone();
        let mut v = vec![0.0; m_total];
        for i in 0..m_total {
            v[i] = settings.alpha * mx[i] + (1.0 - settings.alpha) * z_prev[i];
        }
        for i in 0..m_total {
            z[i] = v[i] + y[i] / rho;
        }
        project(&mut z);
        for i in 0..m_total {
            y[i] += rho * (v[i] - z[i]);
        }

        if iter % settings.check_interval == 0 || iter == settings.max_iterations {
            // Primal residual: ‖Mx − z‖∞.
            let mut r_prim = 0.0f64;
            for i in 0..m_total {
                r_prim = r_prim.max((mx[i] - z[i]).abs());
            }
            // Dual residual: ‖Px + q + Mᵀy‖∞.
            let px = problem.p.matvec(&x);
            let mty = m.matvec_t(&y);
            let mut r_dual = 0.0f64;
            for i in 0..n {
                r_dual = r_dual.max((px[i] + problem.q[i] + mty[i]).abs());
            }

            let eps_prim = settings.eps_abs + settings.eps_rel * norm_inf(&mx).max(norm_inf(&z));
            let eps_dual = settings.eps_abs
                + settings.eps_rel * norm_inf(&px).max(norm_inf(&mty)).max(norm_inf(&problem.q));

            primal_residual = r_prim;
            dual_residual = r_dual;
            if r_prim <= eps_prim && r_dual <= eps_dual {
                status = Status::Solved;
                break;
            }

            // Primal infeasibility certificate (box-only problems):
            // a dual direction δy with Mᵀδy ≈ 0 whose support function
            // over the boxes is strictly negative proves emptiness.
            if problem.psd_blocks.is_empty() {
                let dy: Vec<f64> = y.iter().zip(&y_at_last_check).map(|(a, b)| a - b).collect();
                let dy_norm = norm_inf(&dy);
                if dy_norm > settings.eps_abs {
                    let mt_dy = m.matvec_t(&dy);
                    if norm_inf(&mt_dy) <= 1e-6 * dy_norm {
                        let mut support = 0.0;
                        let mut certifiable = true;
                        for ((&d, &lo), &hi) in dy.iter().zip(&problem.l).zip(&problem.u) {
                            if d > 1e-9 * dy_norm {
                                if hi.is_finite() {
                                    support += hi * d;
                                } else {
                                    certifiable = false;
                                    break;
                                }
                            } else if d < -1e-9 * dy_norm {
                                if lo.is_finite() {
                                    support += lo * d;
                                } else {
                                    certifiable = false;
                                    break;
                                }
                            }
                        }
                        if certifiable && support < -settings.eps_abs * dy_norm {
                            y = dy;
                            status = Status::PrimalInfeasible;
                            break;
                        }
                    }
                }
            }
            y_at_last_check.copy_from_slice(&y);

            // Simple adaptive ρ: equalize the residual magnitudes.
            if settings.adaptive_rho && iter % (settings.check_interval * 8) == 0 {
                let ratio = ((r_prim + 1e-30) / (r_dual + 1e-30)).sqrt();
                if !(0.2..=5.0).contains(&ratio) {
                    let new_rho = (rho * ratio).clamp(1e-6, 1e6);
                    if (new_rho / rho - 1.0).abs() > 1e-9 {
                        // Rescale duals so y/ρ stays consistent.
                        for yi in y.iter_mut() {
                            *yi *= new_rho / rho;
                        }
                        rho = new_rho;
                        kkt = factor_kkt(rho)?;
                    }
                }
            }
        }
    }

    // Active-set polish (box rows only; PSD-block problems skip it).
    if settings.polish
        && status != Status::PrimalInfeasible
        && problem.psd_blocks.is_empty()
        && m_box > 0
    {
        if let Some(xp) = polish_active_set(problem, &x, &y, &z) {
            let tol = 10.0 * settings.eps_abs;
            if problem.box_violation(&xp) <= tol
                && problem.objective(&xp) <= problem.objective(&x) + tol
            {
                x = xp;
                status = Status::Solved;
                primal_residual = problem.box_violation(&x);
                OBS_POLISH_ACCEPTED.inc();
            } else {
                OBS_POLISH_REJECTED.inc();
            }
        } else {
            OBS_POLISH_REJECTED.inc();
        }
    }

    Ok(Solution {
        objective: problem.objective(&x),
        x,
        y,
        status,
        iterations,
        primal_residual,
        dual_residual,
        solve_time: start.elapsed(),
    })
}

/// Solves the equality-constrained KKT system over the rows the ADMM
/// iterate marks active (duals pushing against a bound, or equality
/// rows). Returns `None` when the system is singular or trivially empty.
fn polish_active_set(problem: &ConeQp, x: &[f64], y: &[f64], z: &[f64]) -> Option<Vec<f64>> {
    let n = problem.num_vars();
    let m_box = problem.num_box_rows();
    const ACT_TOL: f64 = 1e-6;

    // Detect active rows and their pinned values.
    let mut active: Vec<(usize, f64)> = Vec::new();
    for i in 0..m_box {
        let (l, u) = (problem.l[i], problem.u[i]);
        if l == u || (y[i] < -ACT_TOL && l.is_finite() && (z[i] - l).abs() < 1e-3) {
            active.push((i, l));
        } else if y[i] > ACT_TOL && u.is_finite() && (z[i] - u).abs() < 1e-3 {
            active.push((i, u));
        }
    }
    if active.is_empty() {
        return None;
    }
    let k = active.len();

    // KKT: [[P + δI, Aᵀ_act], [A_act, −δI]] · [x; ν] = [−q; b_act].
    const DELTA: f64 = 1e-9;
    let mut kkt = Matrix::zeros(n + k, n + k);
    let p_dense = {
        let mut p = problem.p.to_dense();
        p.symmetrize();
        p
    };
    for i in 0..n {
        for j in 0..n {
            kkt[(i, j)] = p_dense[(i, j)];
        }
        kkt[(i, i)] += DELTA;
    }
    for (row_idx, &(ri, _)) in active.iter().enumerate() {
        for (col, v) in problem.a.row_entries(ri) {
            kkt[(n + row_idx, col)] = v;
            kkt[(col, n + row_idx)] = v;
        }
        kkt[(n + row_idx, n + row_idx)] = -DELTA;
    }
    let mut rhs = vec![0.0; n + k];
    for (r, &qi) in rhs.iter_mut().zip(&problem.q) {
        *r = -qi;
    }
    for (row_idx, &(_, b)) in active.iter().enumerate() {
        rhs[n + row_idx] = b;
    }

    let factor = domo_linalg::Ldlt::factor(&kkt).ok()?;
    let sol = factor.solve(&rhs);
    let xp = sol[..n].to_vec();
    // Guard against a wrong active set producing a wild point.
    let drift: f64 = xp
        .iter()
        .zip(x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    if !drift.is_finite() {
        return None;
    }
    Some(xp)
}

/// Solves the pure linear program `min qᵀx  s.t.  l ≤ Ax ≤ u` by calling
/// the ADMM solver with a zero quadratic term.
///
/// # Examples
///
/// ```
/// use domo_solver::{solve_lp, Settings};
/// use domo_linalg::CsrMatrix;
///
/// // min −x  s.t.  x ≤ 4, x ≥ 0  →  x* = 4.
/// let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]);
/// let sol = solve_lp(&[-1.0], &a, &[0.0], &[4.0], &Settings::default());
/// assert!((sol.x[0] - 4.0).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if the dimensions of `q`, `a`, `l`, `u` are inconsistent.
pub fn solve_lp(q: &[f64], a: &CsrMatrix, l: &[f64], u: &[f64], settings: &Settings) -> Solution {
    let n = q.len();
    let problem = match ConeQp::new(
        CsrMatrix::zeros(n, n),
        q.to_vec(),
        a.clone(),
        l.to_vec(),
        u.to_vec(),
    ) {
        Ok(p) => p,
        Err(e) => panic!("solve_lp arguments must be dimensionally consistent: {e}"),
    };
    solve(&problem, settings)
}

/// Reports the minimum eigenvalue over all PSD blocks at `x` — a
/// diagnostic for "how far outside the cone" an iterate sits. Returns
/// `0.0` when there are no blocks.
///
/// # Panics
///
/// Panics if `x.len() != problem.num_vars()`.
pub fn psd_infeasibility(problem: &ConeQp, x: &[f64]) -> f64 {
    assert_eq!(x.len(), problem.num_vars(), "point has wrong length");
    let mut worst = 0.0f64;
    for block in &problem.psd_blocks {
        let dim = block.dim();
        let mut mat = Matrix::zeros(dim, dim);
        for j in 0..dim {
            for i in 0..=j {
                let v = x[block.vars()[svec_index(i, j)]];
                mat[(i, j)] = v;
                mat[(j, i)] = v;
            }
        }
        worst = worst.min(domo_linalg::min_eigenvalue(&mat));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QpBuilder;

    fn settings() -> Settings {
        Settings::default()
    }

    #[test]
    fn unconstrained_quadratic_reaches_minimum() {
        // minimize (x0 − 1)² + (x1 + 2)².
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 0, 2.0);
        b.add_quadratic(1, 1, 2.0);
        b.add_linear(0, -2.0);
        b.add_linear(1, 4.0);
        let sol = solve(&b.build().unwrap(), &settings());
        assert!(sol.is_solved());
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "x0 = {}", sol.x[0]);
        assert!((sol.x[1] + 2.0).abs() < 1e-4, "x1 = {}", sol.x[1]);
    }

    #[test]
    fn active_box_constraint_binds() {
        // minimize (x − 3)², 0 ≤ x ≤ 2 → x* = 2.
        let mut b = QpBuilder::new(1);
        b.add_quadratic(0, 0, 2.0);
        b.add_linear(0, -6.0);
        b.add_row(&[(0, 1.0)], 0.0, 2.0);
        let sol = solve(&b.build().unwrap(), &settings());
        assert!(sol.is_solved());
        assert!((sol.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn equality_constraint_projection() {
        // minimize x0² + x1²  s.t.  x0 + x1 = 1 → (0.5, 0.5).
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 0, 2.0);
        b.add_quadratic(1, 1, 2.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], 1.0, 1.0);
        let sol = solve(&b.build().unwrap(), &settings());
        assert!(sol.is_solved());
        assert!((sol.x[0] - 0.5).abs() < 1e-4);
        assert!((sol.x[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn lp_reaches_vertex() {
        // max x0 + 2 x1  s.t. x0 + x1 ≤ 4, 0 ≤ x ≤ 3 → (1, 3), value 7.
        let mut b = QpBuilder::new(2);
        b.add_linear(0, -1.0);
        b.add_linear(1, -2.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], f64::NEG_INFINITY, 4.0);
        b.add_row(&[(0, 1.0)], 0.0, 3.0);
        b.add_row(&[(1, 1.0)], 0.0, 3.0);
        let sol = solve(&b.build().unwrap(), &settings());
        assert!(
            sol.is_solved(),
            "residuals {} {}",
            sol.primal_residual,
            sol.dual_residual
        );
        let value = sol.x[0] + 2.0 * sol.x[1];
        assert!((value - 7.0).abs() < 1e-3, "value {value}");
    }

    #[test]
    fn solve_lp_helper_works() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let sol = solve_lp(&[1.0, -1.0], &a, &[-1.0, -1.0], &[1.0, 1.0], &settings());
        assert!((sol.x[0] + 1.0).abs() < 1e-3);
        assert!((sol.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn psd_block_enforces_semidefiniteness() {
        // Variables form [[x0, x1], [x1, x2]] ⪰ 0; minimize (x1 + 1)²
        // with x0 = x2 = 0.25 fixed. Unconstrained optimum x1 = −1 is
        // outside the cone (needs |x1| ≤ 0.25); expect x1 → −0.25.
        let mut b = QpBuilder::new(3);
        b.add_quadratic(1, 1, 2.0);
        b.add_linear(1, 2.0);
        b.fix_variable(0, 0.25);
        b.fix_variable(2, 0.25);
        b.add_psd_block(2, vec![0, 1, 2]).unwrap();
        let sol = solve(&b.build().unwrap(), &settings());
        assert!(sol.is_solved());
        assert!((sol.x[1] + 0.25).abs() < 1e-3, "x1 = {}", sol.x[1]);
        let problem = {
            let mut b = QpBuilder::new(3);
            b.add_psd_block(2, vec![0, 1, 2]).unwrap();
            b.build().unwrap()
        };
        assert!(psd_infeasibility(&problem, &sol.x) > -1e-4);
    }

    #[test]
    fn psd_block_inactive_when_interior() {
        // Same geometry but the optimum is inside the cone: x1 → 0.1.
        let mut b = QpBuilder::new(3);
        b.add_quadratic(1, 1, 2.0);
        b.add_linear(1, -0.2);
        b.fix_variable(0, 1.0);
        b.fix_variable(2, 1.0);
        b.add_psd_block(2, vec![0, 1, 2]).unwrap();
        let sol = solve(&b.build().unwrap(), &settings());
        assert!(sol.is_solved());
        assert!((sol.x[1] - 0.1).abs() < 1e-3);
    }

    #[test]
    fn sdp_trace_minimization() {
        // minimize tr(Z) s.t. Z ⪰ 0, Z01 = 1 (2×2). Optimal Z = [[1,1],[1,1]]
        // scaled: min z00 + z11 with z01 = 1, [[z00, z01],[z01, z11]] ⪰ 0
        // → z00 = z11 = 1 (det = 0), objective 2.
        let mut b = QpBuilder::new(3);
        b.add_linear(0, 1.0);
        b.add_linear(2, 1.0);
        b.fix_variable(1, 1.0);
        b.add_psd_block(2, vec![0, 1, 2]).unwrap();
        let sol = solve(&b.build().unwrap(), &settings());
        assert!(sol.is_solved());
        let obj = sol.x[0] + sol.x[2];
        assert!((obj - 2.0).abs() < 5e-3, "objective {obj}");
    }

    #[test]
    fn warm_start_converges_fast() {
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 0, 2.0);
        b.add_quadratic(1, 1, 2.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], 1.0, 1.0);
        let problem = b.build().unwrap();
        let cold = solve(&problem, &settings());
        let warm = solve_warm(&problem, &settings(), Some(&cold.x));
        assert!(warm.is_solved());
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn detects_primal_infeasibility() {
        // x ≥ 2 and x ≤ 1 simultaneously: empty.
        let mut b = QpBuilder::new(1);
        b.add_quadratic(0, 0, 2.0);
        b.add_row(&[(0, 1.0)], 2.0, f64::INFINITY);
        b.add_row(&[(0, 1.0)], f64::NEG_INFINITY, 1.0);
        let sol = solve(&b.build().unwrap(), &settings());
        assert_eq!(sol.status, Status::PrimalInfeasible);
        assert!(!sol.is_solved());
    }

    #[test]
    fn detects_infeasible_sum_system() {
        // Conflicting equality rows through two variables:
        // x0 + x1 = 0 and x0 + x1 = 10.
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 0, 2.0);
        b.add_quadratic(1, 1, 2.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], 0.0, 0.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], 10.0, 10.0);
        let sol = solve(&b.build().unwrap(), &settings());
        assert_eq!(sol.status, Status::PrimalInfeasible);
    }

    #[test]
    fn feasible_problems_are_not_flagged() {
        // A tightly-constrained but feasible problem must still solve.
        let mut b = QpBuilder::new(1);
        b.add_quadratic(0, 0, 2.0);
        b.add_linear(0, -6.0);
        b.add_row(&[(0, 1.0)], 1.0, 1.0);
        let sol = solve(&b.build().unwrap(), &settings());
        assert_eq!(sol.status, Status::Solved);
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn polish_sharpens_lp_vertices() {
        // max x0 + 2 x1 s.t. x0 + x1 ≤ 4, 0 ≤ x ≤ 3 → (1, 3). With loose
        // tolerances ADMM stops a fraction of a unit away; the polish
        // lands on the vertex to near machine precision.
        let build = || {
            let mut b = QpBuilder::new(2);
            b.add_linear(0, -1.0);
            b.add_linear(1, -2.0);
            b.add_row(&[(0, 1.0), (1, 1.0)], f64::NEG_INFINITY, 4.0);
            b.add_row(&[(0, 1.0)], 0.0, 3.0);
            b.add_row(&[(1, 1.0)], 0.0, 3.0);
            b.build().unwrap()
        };
        let loose = Settings {
            eps_abs: 1e-3,
            eps_rel: 1e-3,
            polish: false,
            ..settings()
        };
        let rough = solve(&build(), &loose);
        let polished = solve(
            &build(),
            &Settings {
                polish: true,
                ..loose
            },
        );
        let err = |s: &Solution| (s.x[0] - 1.0).abs() + (s.x[1] - 3.0).abs();
        assert!(err(&polished) < 1e-6, "polished error {}", err(&polished));
        assert!(err(&polished) <= err(&rough) + 1e-12);
    }

    #[test]
    fn polish_never_accepts_infeasible_points() {
        // A QP whose unconstrained optimum is outside the box; whatever
        // the active-set guess, the accepted point must stay feasible.
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 0, 2.0);
        b.add_linear(0, -20.0);
        b.add_quadratic(1, 1, 2.0);
        b.add_row(&[(0, 1.0)], -1.0, 1.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], -1.5, 1.5);
        let problem = b.build().unwrap();
        let sol = solve(&problem, &settings());
        assert!(problem.box_violation(&sol.x) < 1e-4);
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "x0 should pin to its box");
    }

    #[test]
    fn max_iterations_reports_honestly() {
        let mut b = QpBuilder::new(2);
        b.add_linear(0, -1.0);
        b.add_row(&[(0, 1.0), (1, 1.0)], f64::NEG_INFINITY, 4.0);
        b.add_row(&[(0, 1.0)], 0.0, 3.0);
        b.add_row(&[(1, 1.0)], 0.0, 3.0);
        let tight = Settings {
            max_iterations: 3,
            check_interval: 1,
            ..settings()
        };
        let sol = solve(&b.build().unwrap(), &tight);
        assert_eq!(sol.status, Status::MaxIterations);
        assert_eq!(sol.iterations, 3);
    }

    #[test]
    fn empty_problem_is_solved_trivially() {
        let problem = ConeQp::new(
            CsrMatrix::zeros(0, 0),
            vec![],
            CsrMatrix::zeros(0, 0),
            vec![],
            vec![],
        )
        .unwrap();
        let sol = solve(&problem, &settings());
        assert!(sol.is_solved());
        assert!(sol.x.is_empty());
    }

    #[test]
    fn try_solve_reports_bad_settings_as_errors() {
        let problem = ConeQp::new(
            CsrMatrix::zeros(1, 1),
            vec![0.0],
            CsrMatrix::zeros(0, 1),
            vec![],
            vec![],
        )
        .unwrap();
        for bad in [
            Settings {
                alpha: 2.5,
                ..settings()
            },
            Settings {
                rho: 0.0,
                ..settings()
            },
            Settings {
                sigma: -1.0,
                ..settings()
            },
        ] {
            let e = try_solve(&problem, &bad).expect_err("settings must be rejected");
            assert!(matches!(e, SolverError::BadSettings(_)), "{e}");
            assert!(e.to_string().contains("bad solver settings"));
        }
    }

    #[test]
    fn try_solve_warm_rejects_wrong_length_warm_start() {
        let mut b = QpBuilder::new(2);
        b.add_quadratic(0, 0, 2.0);
        b.add_quadratic(1, 1, 2.0);
        let problem = b.build().unwrap();
        let e = try_solve_warm(&problem, &settings(), Some(&[1.0]));
        assert_eq!(
            e,
            Err(SolverError::BadWarmStart {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn try_solve_reports_failed_factorization_on_nan_data() {
        // A NaN quadratic coefficient poisons the KKT matrix; the
        // panicking API would abort, the try API reports it.
        let mut b = QpBuilder::new(1);
        b.add_quadratic(0, 0, f64::NAN);
        b.add_row(&[(0, 1.0)], 0.0, 1.0);
        let e = try_solve(&b.build().unwrap(), &settings());
        assert_eq!(e, Err(SolverError::FactorizationFailed));
    }

    #[test]
    fn try_solve_matches_solve_on_clean_problems() {
        let mut b = QpBuilder::new(1);
        b.add_quadratic(0, 0, 2.0);
        b.add_linear(0, -6.0);
        b.add_row(&[(0, 1.0)], 0.0, 2.0);
        let problem = b.build().unwrap();
        let a = solve(&problem, &settings());
        let b2 = try_solve(&problem, &settings()).unwrap();
        assert_eq!(a.x, b2.x);
        assert_eq!(a.status, b2.status);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let problem = ConeQp::new(
            CsrMatrix::zeros(1, 1),
            vec![0.0],
            CsrMatrix::zeros(0, 1),
            vec![],
            vec![],
        )
        .unwrap();
        let bad = Settings {
            alpha: 2.5,
            ..settings()
        };
        let _ = solve(&problem, &bad);
    }
}
