//! Symmetric vectorization (`svec`) utilities.
//!
//! The SDP machinery stores a symmetric `s × s` matrix as a length
//! `s(s+1)/2` vector with off-diagonal entries scaled by `√2`. This
//! scaling makes the Euclidean inner product of two svec vectors equal
//! the Frobenius inner product of the matrices, so projecting onto the
//! PSD cone in svec coordinates (via [`project_psd_svec`]) is an *exact*
//! Euclidean projection — the property ADMM's convergence proof needs.
//!
//! Ordering convention: entry `(i, j)` with `i ≤ j` lives at index
//! `j(j+1)/2 + i` (packed upper triangle, column by column).

use domo_linalg::{project_psd, Matrix};

/// `√2`, the off-diagonal svec scaling factor.
pub const SQRT2: f64 = std::f64::consts::SQRT_2;

/// Length of the svec of an `s × s` symmetric matrix.
///
/// # Examples
///
/// ```
/// assert_eq!(domo_solver::svec::svec_len(4), 10);
/// ```
pub const fn svec_len(s: usize) -> usize {
    s * (s + 1) / 2
}

/// Index of entry `(i, j)` (unordered) in the packed upper triangle.
///
/// # Examples
///
/// ```
/// use domo_solver::svec::svec_index;
/// assert_eq!(svec_index(0, 0), 0);
/// assert_eq!(svec_index(0, 1), 1);
/// assert_eq!(svec_index(1, 1), 2);
/// assert_eq!(svec_index(2, 1), svec_index(1, 2));
/// ```
pub const fn svec_index(i: usize, j: usize) -> usize {
    let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
    hi * (hi + 1) / 2 + lo
}

/// Packs a symmetric matrix into scaled svec form.
///
/// # Panics
///
/// Panics if `m` is not square.
pub fn svec(m: &Matrix) -> Vec<f64> {
    assert!(m.is_square(), "svec requires a square matrix");
    let s = m.rows();
    let mut out = vec![0.0; svec_len(s)];
    for j in 0..s {
        for i in 0..=j {
            let v = m[(i, j)];
            out[svec_index(i, j)] = if i == j { v } else { SQRT2 * v };
        }
    }
    out
}

/// Unpacks a scaled svec vector into the symmetric matrix it encodes.
///
/// # Panics
///
/// Panics if `v.len()` is not a valid svec length.
pub fn smat(v: &[f64]) -> Matrix {
    let s = dim_from_len(v.len());
    let mut m = Matrix::zeros(s, s);
    for j in 0..s {
        for i in 0..=j {
            let raw = v[svec_index(i, j)];
            let val = if i == j { raw } else { raw / SQRT2 };
            m[(i, j)] = val;
            m[(j, i)] = val;
        }
    }
    m
}

/// Recovers the matrix dimension from an svec length.
///
/// # Panics
///
/// Panics if `len` is not of the form `s(s+1)/2`.
pub fn dim_from_len(len: usize) -> usize {
    // Solve s(s+1)/2 = len.
    let s = ((((8 * len + 1) as f64).sqrt() - 1.0) / 2.0).round() as usize;
    assert_eq!(svec_len(s), len, "length {len} is not a triangular number");
    s
}

/// Projects a scaled svec vector onto the PSD cone (in place semantics:
/// returns the projected vector).
///
/// # Panics
///
/// Panics if `v.len()` is not a valid svec length.
pub fn project_psd_svec(v: &[f64]) -> Vec<f64> {
    svec(&project_psd(&smat(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layout_is_packed_upper_triangle() {
        // 3×3: (0,0)→0, (0,1)→1, (1,1)→2, (0,2)→3, (1,2)→4, (2,2)→5.
        assert_eq!(svec_index(0, 0), 0);
        assert_eq!(svec_index(0, 1), 1);
        assert_eq!(svec_index(1, 1), 2);
        assert_eq!(svec_index(0, 2), 3);
        assert_eq!(svec_index(1, 2), 4);
        assert_eq!(svec_index(2, 2), 5);
        // Symmetric in the arguments.
        assert_eq!(svec_index(2, 0), 3);
    }

    #[test]
    fn svec_smat_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 5.0], &[3.0, 5.0, 6.0]]);
        let v = svec(&m);
        assert_eq!(v.len(), 6);
        let back = smat(&v);
        assert!((&back - &m).frobenius_norm() < 1e-14);
    }

    #[test]
    fn svec_preserves_inner_products() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 3.0], &[3.0, -1.0]]);
        let frob: f64 = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| a[(i, j)] * b[(i, j)])
            .sum();
        let dot = domo_linalg::dot(&svec(&a), &svec(&b));
        assert!((frob - dot).abs() < 1e-12);
    }

    #[test]
    fn dim_from_len_accepts_triangular_numbers() {
        assert_eq!(dim_from_len(1), 1);
        assert_eq!(dim_from_len(3), 2);
        assert_eq!(dim_from_len(6), 3);
        assert_eq!(dim_from_len(10), 4);
        assert_eq!(dim_from_len(0), 0);
    }

    #[test]
    #[should_panic(expected = "triangular")]
    fn dim_from_len_rejects_non_triangular() {
        let _ = dim_from_len(7);
    }

    #[test]
    fn projection_in_svec_matches_matrix_projection() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // λ = 3, −1
        let projected = smat(&project_psd_svec(&svec(&m)));
        let direct = project_psd(&m);
        assert!((&projected - &direct).frobenius_norm() < 1e-12);
    }

    #[test]
    fn projection_is_euclidean_in_svec_coordinates() {
        // For any v, ‖v − Π(v)‖ ≤ ‖v − w‖ for a few PSD witnesses w.
        let m = Matrix::from_rows(&[&[0.0, 3.0], &[3.0, -1.0]]);
        let v = svec(&m);
        let p = project_psd_svec(&v);
        let dist_p = domo_linalg::norm2(&domo_linalg::sub_vec(&v, &p));
        for witness in [Matrix::identity(2), Matrix::zeros(2, 2)] {
            let w = svec(&witness);
            let dist_w = domo_linalg::norm2(&domo_linalg::sub_vec(&v, &w));
            assert!(dist_p <= dist_w + 1e-12);
        }
    }
}
