//! From-scratch convex solvers for the Domo reconstruction pipeline.
//!
//! The Domo paper (ICDCS 2014) turns per-hop per-packet delay tomography
//! into convex optimization problems: a quadratic program for estimated
//! arrival times and a pair of linear programs per unknown for bounds,
//! with the non-convex FIFO constraints handled by semidefinite
//! relaxation. The Rust ecosystem has no mature SDP solver to lean on
//! (that is this paper's reproduction gate), so this crate implements the
//! required solver from scratch:
//!
//! * [`ConeQp`] / [`QpBuilder`] — problem descriptions for
//!   `min ½xᵀPx + qᵀx` subject to box rows `l ≤ Ax ≤ u` and optional
//!   [`PsdBlock`]s requiring subsets of variables to form PSD matrices
//!   (the lifted `[[U, u], [uᵀ, 1]] ⪰ 0` constraints of the paper's
//!   relaxation).
//! * [`solve`] / [`solve_warm`] / [`solve_lp`] — an OSQP-style ADMM
//!   method whose cone projection handles boxes and PSD blocks; the PSD
//!   projection runs through the Jacobi eigensolver in `domo-linalg`.
//! * [`svec`] — the symmetric-vectorization convention shared by problem
//!   construction and the solver.
//!
//! # Examples
//!
//! ```
//! use domo_solver::{QpBuilder, solve, Settings};
//!
//! // minimize (x0 − 1)² + (x1 − 1)²  s.t.  x0 + x1 = 1.
//! let mut b = QpBuilder::new(2);
//! b.add_quadratic(0, 0, 2.0);
//! b.add_quadratic(1, 1, 2.0);
//! b.add_linear(0, -2.0);
//! b.add_linear(1, -2.0);
//! b.add_row(&[(0, 1.0), (1, 1.0)], 1.0, 1.0);
//! let sol = solve(&b.build()?, &Settings::default());
//! assert!(sol.is_solved());
//! assert!((sol.x[0] - 0.5).abs() < 1e-4);
//! # Ok::<(), domo_solver::ProblemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admm;
pub mod problem;
pub mod svec;

pub use admm::{
    psd_infeasibility, solve, solve_lp, solve_warm, try_solve, try_solve_warm, Settings, Solution,
    SolverError, Status,
};
pub use problem::{ConeQp, ProblemError, PsdBlock, QpBuilder};
