//! Bounded drop-oldest subscription fan-out.
//!
//! [`SubHub`] fans newly emitted reconstruction results out to live
//! subscribers using the same queue discipline the sink's shard queues
//! use: each subscriber owns a bounded ring; when it falls behind, the
//! *oldest* undelivered event is dropped and counted in the
//! subscriber's `lagged_dropped` tally (newest data wins, exactly as
//! in the ingest path). A subscriber whose cumulative drops cross the
//! configured shed threshold is closed outright — a slow consumer must
//! not pin memory or wake-up work forever.
//!
//! Delivery ordering and exactly-once are the *caller's* contract:
//! the sink publishes under the same lock that appends to its result
//! store and registers subscribers under that lock too, so a
//! subscriber's backfill plus live stream covers every emitted result
//! exactly once (absent lag drops, which are counted and reported).
//! The hub itself only guarantees per-subscriber FIFO of what it
//! delivers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Hub state stays usable: counters and queues are always valid, at
/// worst an event delivery raced the panic.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One emitted reconstruction result, flattened to plain data (node
/// ids as `u16`, per-hop receive times in ms of trace time).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Origin node id of the packet.
    pub origin: u16,
    /// Per-origin sequence number.
    pub seq: u32,
    /// Forwarding path, origin first.
    pub path: Vec<u16>,
    /// Per-hop receive times, one per path entry.
    pub hop_times_ms: Vec<f64>,
}

/// Which emitted results a subscriber wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubFilter {
    /// Every result.
    All,
    /// Results whose path *forwards through* the node: the node
    /// appears at a non-terminal position, i.e. it recorded a sojourn.
    Node(u16),
    /// Results whose path starts at `src` and ends at `dst`.
    Path {
        /// First node of the path.
        src: u16,
        /// Last node of the path.
        dst: u16,
    },
}

impl SubFilter {
    /// Does `ev` match this filter?
    pub fn matches(&self, ev: &Event) -> bool {
        match *self {
            SubFilter::All => true,
            SubFilter::Node(id) => {
                let n = ev.path.len();
                n > 1 && ev.path[..n - 1].contains(&id)
            }
            SubFilter::Path { src, dst } => {
                ev.path.first() == Some(&src) && ev.path.last() == Some(&dst)
            }
        }
    }
}

/// Per-subscriber queue policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubOptions {
    /// Queue bound; beyond it the oldest undelivered event is dropped.
    pub capacity: usize,
    /// Cumulative dropped-event threshold after which the subscriber
    /// is shed (closed). `0` disables shedding.
    pub max_lagged: u64,
}

impl Default for SubOptions {
    fn default() -> Self {
        Self {
            capacity: 256,
            max_lagged: 1024,
        }
    }
}

/// What one `publish` did, so the sink can feed its metrics without
/// the hub depending on the obs crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Events enqueued across subscribers.
    pub delivered: u64,
    /// Events dropped to make room (drop-oldest).
    pub lagged: u64,
    /// Subscribers shed (closed) by this publish.
    pub shed: u64,
}

struct SubState {
    queue: VecDeque<Arc<Event>>,
    /// Cumulative dropped events.
    lagged_total: u64,
    /// Dropped events not yet reported via `take_lagged`.
    lagged_unread: u64,
    closed: bool,
    /// Whether the close was a shed (threshold), vs a plain drop.
    shed: bool,
}

struct SubInner {
    filter: SubFilter,
    opts: SubOptions,
    state: Mutex<SubState>,
    wake: Condvar,
}

/// What [`Subscription::recv`] yielded.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvOutcome {
    /// The next event in FIFO order.
    Event(Arc<Event>),
    /// The subscription is closed (dropped publisher side, or shed);
    /// `shed` distinguishes the two. No further events will arrive
    /// once the queue has drained.
    Closed {
        /// True when the hub shed this subscriber for lagging.
        shed: bool,
    },
    /// Nothing arrived within the timeout.
    Timeout,
}

/// A live subscription handle. Dropping it unregisters the subscriber
/// (lazily, at the next publish).
pub struct Subscription {
    inner: Arc<SubInner>,
}

impl Subscription {
    /// Waits up to `timeout` for the next event. Queued events are
    /// delivered even after close (drain-then-close semantics), so a
    /// shed subscriber still sees everything delivered before the
    /// shed.
    pub fn recv(&self, timeout: Duration) -> RecvOutcome {
        let mut st = lock_or_recover(&self.inner.state);
        loop {
            if let Some(ev) = st.queue.pop_front() {
                domo_obs::trace::stamp(ev.origin, ev.seq, domo_obs::trace::Stage::SubscriberSend);
                return RecvOutcome::Event(ev);
            }
            if st.closed {
                return RecvOutcome::Closed { shed: st.shed };
            }
            let (next, res) = match self.inner.wake.wait_timeout(st, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let (g, res) = poisoned.into_inner();
                    (g, res)
                }
            };
            st = next;
            if res.timed_out() && st.queue.is_empty() && !st.closed {
                return RecvOutcome::Timeout;
            }
        }
    }

    /// Events dropped (drop-oldest) since the last call; resets the
    /// unread tally. The cumulative count is [`Self::lagged_total`].
    pub fn take_lagged(&self) -> u64 {
        let mut st = lock_or_recover(&self.inner.state);
        std::mem::take(&mut st.lagged_unread)
    }

    /// Cumulative events dropped for this subscriber.
    pub fn lagged_total(&self) -> u64 {
        lock_or_recover(&self.inner.state).lagged_total
    }

    /// The filter this subscription registered with.
    pub fn filter(&self) -> SubFilter {
        self.inner.filter
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut st = lock_or_recover(&self.inner.state);
        st.closed = true;
    }
}

/// Fan-out hub. One per sink service; publishes are serialized by the
/// caller (the sink publishes under its store lock, which is what
/// makes backfill-plus-live exactly-once).
#[derive(Default)]
pub struct SubHub {
    subs: Mutex<Vec<Arc<SubInner>>>,
    delivered_total: AtomicU64,
    lagged_total: AtomicU64,
    shed_total: AtomicU64,
}

impl SubHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber. The returned handle's queue starts
    /// empty: events published strictly after this call (and matching
    /// the filter) will be delivered in order.
    pub fn subscribe(&self, filter: SubFilter, opts: SubOptions) -> Subscription {
        let inner = Arc::new(SubInner {
            filter,
            opts: SubOptions {
                capacity: opts.capacity.max(1),
                max_lagged: opts.max_lagged,
            },
            state: Mutex::new(SubState {
                queue: VecDeque::new(),
                lagged_total: 0,
                lagged_unread: 0,
                closed: false,
                shed: false,
            }),
            wake: Condvar::new(),
        });
        lock_or_recover(&self.subs).push(Arc::clone(&inner));
        Subscription { inner }
    }

    /// Fans one event out to every matching live subscriber, applying
    /// the drop-oldest bound and the shed threshold. Closed
    /// subscribers are purged from the registry here.
    pub fn publish(&self, ev: Event) -> PublishOutcome {
        domo_obs::trace::stamp(ev.origin, ev.seq, domo_obs::trace::Stage::Publish);
        let ev = Arc::new(ev);
        let mut out = PublishOutcome::default();
        let mut subs = lock_or_recover(&self.subs);
        subs.retain(|sub| {
            let mut st = lock_or_recover(&sub.state);
            if st.closed {
                // Wake a receiver that may be parked on an empty
                // queue so it observes the close.
                sub.wake.notify_all();
                return false;
            }
            if !sub.filter.matches(&ev) {
                return true;
            }
            st.queue.push_back(Arc::clone(&ev));
            out.delivered += 1;
            if st.queue.len() > sub.opts.capacity {
                st.queue.pop_front();
                st.lagged_total += 1;
                st.lagged_unread += 1;
                out.lagged += 1;
                if sub.opts.max_lagged > 0 && st.lagged_total >= sub.opts.max_lagged {
                    st.closed = true;
                    st.shed = true;
                    out.shed += 1;
                    domo_obs::flight!("subscriber_shed", lagged = st.lagged_total);
                }
            }
            let keep = !st.closed;
            sub.wake.notify_all();
            keep
        });
        self.delivered_total
            .fetch_add(out.delivered, Ordering::Relaxed);
        self.lagged_total.fetch_add(out.lagged, Ordering::Relaxed);
        self.shed_total.fetch_add(out.shed, Ordering::Relaxed);
        out
    }

    /// Live (registered, not yet purged) subscriber count.
    pub fn subscriber_count(&self) -> usize {
        let mut subs = lock_or_recover(&self.subs);
        subs.retain(|sub| !lock_or_recover(&sub.state).closed);
        subs.len()
    }

    /// Cumulative events enqueued across all subscribers.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total.load(Ordering::Relaxed)
    }

    /// Cumulative events dropped (drop-oldest) across all subscribers.
    pub fn lagged_dropped_total(&self) -> u64 {
        self.lagged_total.load(Ordering::Relaxed)
    }

    /// Cumulative subscribers shed for lagging.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(origin: u16, seq: u32, path: &[u16]) -> Event {
        Event {
            origin,
            seq,
            path: path.to_vec(),
            hop_times_ms: path.iter().enumerate().map(|(i, _)| i as f64).collect(),
        }
    }

    #[test]
    fn filters_match_forwarding_positions() {
        let e = ev(1, 0, &[1, 2, 3]);
        assert!(SubFilter::All.matches(&e));
        assert!(SubFilter::Node(1).matches(&e));
        assert!(SubFilter::Node(2).matches(&e));
        // The terminal node records no sojourn: not a match.
        assert!(!SubFilter::Node(3).matches(&e));
        assert!(SubFilter::Path { src: 1, dst: 3 }.matches(&e));
        assert!(!SubFilter::Path { src: 2, dst: 3 }.matches(&e));
    }

    #[test]
    fn events_are_delivered_in_fifo_order() {
        let hub = SubHub::new();
        let sub = hub.subscribe(SubFilter::All, SubOptions::default());
        for seq in 0..5 {
            hub.publish(ev(1, seq, &[1, 2]));
        }
        for seq in 0..5 {
            match sub.recv(Duration::from_millis(100)) {
                RecvOutcome::Event(e) => assert_eq!(e.seq, seq),
                other => panic!("expected event {seq}, got {other:?}"),
            }
        }
        assert_eq!(sub.recv(Duration::from_millis(10)), RecvOutcome::Timeout);
        assert_eq!(hub.delivered_total(), 5);
    }

    #[test]
    fn node_filter_selects_subset() {
        let hub = SubHub::new();
        let sub = hub.subscribe(SubFilter::Node(7), SubOptions::default());
        hub.publish(ev(1, 0, &[1, 7, 3]));
        hub.publish(ev(1, 1, &[1, 2, 3]));
        hub.publish(ev(1, 2, &[7, 2, 3]));
        let mut seqs = Vec::new();
        while let RecvOutcome::Event(e) = sub.recv(Duration::from_millis(20)) {
            seqs.push(e.seq);
        }
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn drop_oldest_counts_lag_and_sheds() {
        let hub = SubHub::new();
        let sub = hub.subscribe(
            SubFilter::All,
            SubOptions {
                capacity: 2,
                max_lagged: 3,
            },
        );
        for seq in 0..6 {
            hub.publish(ev(1, seq, &[1, 2]));
        }
        // Capacity 2, 6 publishes → 4 would drop, but the shed
        // threshold (3) closes the subscriber at the third drop.
        assert_eq!(hub.shed_total(), 1);
        assert_eq!(sub.lagged_total(), 3);
        assert_eq!(sub.take_lagged(), 3);
        assert_eq!(sub.take_lagged(), 0);
        // Drain-then-close: the newest 2 events are still readable.
        let mut seqs = Vec::new();
        loop {
            match sub.recv(Duration::from_millis(50)) {
                RecvOutcome::Event(e) => seqs.push(e.seq),
                RecvOutcome::Closed { shed } => {
                    assert!(shed);
                    break;
                }
                RecvOutcome::Timeout => panic!("expected close after drain"),
            }
        }
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn dropping_the_handle_unregisters() {
        let hub = SubHub::new();
        let sub = hub.subscribe(SubFilter::All, SubOptions::default());
        assert_eq!(hub.subscriber_count(), 1);
        drop(sub);
        assert_eq!(hub.subscriber_count(), 0);
        let out = hub.publish(ev(1, 0, &[1, 2]));
        assert_eq!(out.delivered, 0);
    }

    #[test]
    fn blocking_recv_wakes_on_publish() {
        let hub = std::sync::Arc::new(SubHub::new());
        let sub = hub.subscribe(SubFilter::All, SubOptions::default());
        let h2 = std::sync::Arc::clone(&hub);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            h2.publish(ev(5, 9, &[5, 6]));
        });
        match sub.recv(Duration::from_secs(5)) {
            RecvOutcome::Event(e) => {
                assert_eq!(e.origin, 5);
                assert_eq!(e.seq, 9);
            }
            other => panic!("expected event, got {other:?}"),
        }
        t.join().unwrap();
    }

    #[test]
    fn zero_max_lagged_never_sheds() {
        let hub = SubHub::new();
        let sub = hub.subscribe(
            SubFilter::All,
            SubOptions {
                capacity: 1,
                max_lagged: 0,
            },
        );
        for seq in 0..100 {
            hub.publish(ev(1, seq, &[1, 2]));
        }
        assert_eq!(hub.shed_total(), 0);
        assert_eq!(sub.lagged_total(), 99);
        match sub.recv(Duration::from_millis(50)) {
            RecvOutcome::Event(e) => assert_eq!(e.seq, 99),
            other => panic!("expected newest event, got {other:?}"),
        }
    }
}
