//! Per-node time-bucketed sketch series behind `AGG` queries.
//!
//! [`AggStore`] keeps, for each forwarding node, a map from
//! fixed-granularity time buckets to [`DelaySketch`]es, fed
//! incrementally as results are emitted. Retention is bounded per node
//! (`retention_buckets`); pruned history stays queryable because the
//! result log retains the raw records and the sink backfills cold
//! windows from it ([`AggStore::retention_floor_ms`] tells the caller
//! where sketch coverage begins).
//!
//! Queries return *wider-granularity* buckets: `bucket_ms` must be a
//! positive multiple of the store granularity, the query window is
//! widened outward to `bucket_ms` alignment, and each output bucket is
//! the merge of the sketch buckets it covers — so a windowed quantile
//! carries exactly the per-sketch error bound, nothing more.
//!
//! All state snapshots to plain data ([`AggParts`]) and restores
//! bit-identically, which is what the sink's checkpoint layer needs.

use crate::sketch::{DelaySketch, SketchParts};
use std::collections::BTreeMap;

/// Configuration for an [`AggStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggConfig {
    /// Width of one sketch bucket in milliseconds of trace time.
    pub granularity_ms: u64,
    /// Retained sketch buckets per node; older buckets are pruned
    /// oldest-first (the result log still has the raw records).
    pub retention_buckets: usize,
}

impl Default for AggConfig {
    fn default() -> Self {
        Self {
            granularity_ms: 100,
            retention_buckets: 4096,
        }
    }
}

/// One aggregated output bucket of an `AGG` query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggBucket {
    /// Bucket start, ms of trace time (aligned to the query bucket
    /// width).
    pub start_ms: i64,
    /// Samples in the bucket.
    pub count: u64,
    /// Exact mean delay.
    pub mean: f64,
    /// Estimated median (see [`DelaySketch::quantile`] for the bound).
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Exact maximum delay.
    pub max: f64,
}

impl AggBucket {
    /// Renders a non-empty sketch into an output bucket. Returns
    /// `None` for empty sketches (empty buckets are omitted from
    /// replies).
    pub fn from_sketch(start_ms: i64, s: &DelaySketch) -> Option<Self> {
        let mean = s.mean()?;
        Some(Self {
            start_ms,
            count: s.count(),
            mean,
            p50: s.quantile(0.5)?,
            p95: s.quantile(0.95)?,
            p99: s.quantile(0.99)?,
            max: s.max()?,
        })
    }
}

/// Renders a map of per-bucket sketches (as returned by
/// [`AggStore::query_sketches`], possibly merged with a backfill map)
/// into ordered output buckets, omitting empty ones.
pub fn render_buckets(map: &BTreeMap<i64, DelaySketch>) -> Vec<AggBucket> {
    map.iter()
        .filter_map(|(&start, s)| AggBucket::from_sketch(start, s))
        .collect()
}

/// Snapshot of one node's series.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSeriesParts {
    /// Node id.
    pub node: u16,
    /// First retained bucket key after pruning (granularity units),
    /// if any pruning has happened.
    pub pruned_through: Option<i64>,
    /// `(bucket key, sketch)` pairs in ascending key order.
    pub buckets: Vec<(i64, SketchParts)>,
}

/// Plain-data snapshot of an [`AggStore`], for checkpoint encoding.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggParts {
    /// Granularity the snapshot was taken at. A restore under a
    /// different configured granularity discards the snapshot (the
    /// bucket keys would be meaningless) and starts fresh.
    pub granularity_ms: u64,
    /// Per-node series, ascending node id.
    pub nodes: Vec<NodeSeriesParts>,
}

#[derive(Debug, Clone, Default)]
struct NodeSeries {
    /// First bucket key (granularity units) that is still retained
    /// after pruning; records older than this are dropped on arrival
    /// (the result log covers them).
    pruned_through: Option<i64>,
    buckets: BTreeMap<i64, DelaySketch>,
}

/// Per-node time-bucketed sketches with bounded retention.
#[derive(Debug, Clone)]
pub struct AggStore {
    granularity_ms: u64,
    retention_buckets: usize,
    nodes: BTreeMap<u16, NodeSeries>,
}

impl Default for AggStore {
    fn default() -> Self {
        Self::new(AggConfig::default())
    }
}

impl AggStore {
    /// An empty store. Zero `granularity_ms` or `retention_buckets`
    /// are clamped to 1.
    pub fn new(cfg: AggConfig) -> Self {
        Self {
            granularity_ms: cfg.granularity_ms.max(1),
            retention_buckets: cfg.retention_buckets.max(1),
            nodes: BTreeMap::new(),
        }
    }

    /// The configured sketch granularity in ms.
    pub fn granularity_ms(&self) -> u64 {
        self.granularity_ms
    }

    /// Records one per-hop delay sample: node `node` forwarded a
    /// packet at trace time `t_ms` with sojourn `delay_ms`. Non-finite
    /// timestamps are ignored; records older than the node's pruned
    /// region are dropped (backfill owns that range).
    pub fn record(&mut self, node: u16, t_ms: f64, delay_ms: f64) {
        if !t_ms.is_finite() {
            return;
        }
        let key = (t_ms / self.granularity_ms as f64).floor() as i64;
        let series = self.nodes.entry(node).or_default();
        if series.pruned_through.is_some_and(|p| key < p) {
            return;
        }
        series.buckets.entry(key).or_default().record(delay_ms);
        while series.buckets.len() > self.retention_buckets {
            if let Some((&oldest, _)) = series.buckets.iter().next() {
                series.buckets.remove(&oldest);
                let floor = oldest + 1;
                series.pruned_through = Some(series.pruned_through.map_or(floor, |p| p.max(floor)));
            }
        }
    }

    /// Earliest trace time (ms) from which this node's sketches are
    /// complete. `None` means nothing has been pruned: the sketches
    /// cover all history the store ever saw.
    pub fn retention_floor_ms(&self, node: u16) -> Option<i64> {
        self.nodes
            .get(&node)?
            .pruned_through
            .map(|p| p.saturating_mul(self.granularity_ms as i64))
    }

    /// Total retained sketch buckets across all nodes.
    pub fn retained_buckets(&self) -> usize {
        self.nodes.values().map(|s| s.buckets.len()).sum()
    }

    /// Aggregates node `node` over `[start_ms, end_ms)` into
    /// `bucket_ms`-wide output buckets, returning the merged sketch
    /// per output bucket (keyed by bucket start ms). The window is
    /// widened outward to `bucket_ms` alignment. Fails unless
    /// `bucket_ms` is a positive multiple of the store granularity and
    /// the bounds are finite with `start_ms <= end_ms`.
    ///
    /// The result covers only the node's *retained* range; the caller
    /// merges a backfill map (built from the result log, see
    /// [`bucket_raw_records`]) for anything older than
    /// [`Self::retention_floor_ms`].
    pub fn query_sketches(
        &self,
        node: u16,
        start_ms: f64,
        end_ms: f64,
        bucket_ms: u64,
    ) -> Result<BTreeMap<i64, DelaySketch>, String> {
        let ratio = validate_window(self.granularity_ms, start_ms, end_ms, bucket_ms)?;
        let mut out = BTreeMap::new();
        let Some(series) = self.nodes.get(&node) else {
            return Ok(out);
        };
        let b0 = (start_ms / bucket_ms as f64).floor() as i64;
        let b1 = (end_ms / bucket_ms as f64).ceil() as i64;
        if b1 <= b0 {
            return Ok(out);
        }
        let lo = b0.saturating_mul(ratio);
        let hi = b1.saturating_mul(ratio);
        for (&key, sketch) in series.buckets.range(lo..hi) {
            let bucket_start = key.div_euclid(ratio).saturating_mul(bucket_ms as i64);
            out.entry(bucket_start)
                .or_insert_with(DelaySketch::new)
                .merge(sketch);
        }
        Ok(out)
    }

    /// Snapshot for persistence, deterministic ordering throughout.
    pub fn to_parts(&self) -> AggParts {
        AggParts {
            granularity_ms: self.granularity_ms,
            nodes: self
                .nodes
                .iter()
                .map(|(&node, series)| NodeSeriesParts {
                    node,
                    pruned_through: series.pruned_through,
                    buckets: series
                        .buckets
                        .iter()
                        .map(|(&k, s)| (k, s.to_parts()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a store from a snapshot. If the snapshot was taken at
    /// a different granularity than `cfg` asks for, the snapshot is
    /// discarded (its bucket keys don't translate) and an empty store
    /// is returned — cold queries then backfill from the result log.
    pub fn from_parts(cfg: AggConfig, parts: &AggParts) -> Self {
        let mut store = Self::new(cfg);
        if parts.granularity_ms != store.granularity_ms {
            return store;
        }
        for np in &parts.nodes {
            let series = store.nodes.entry(np.node).or_default();
            series.pruned_through = np.pruned_through;
            for (k, sp) in &np.buckets {
                series.buckets.insert(*k, DelaySketch::from_parts(sp));
            }
        }
        store
    }
}

/// Validates an aggregation window against a granularity; returns
/// `bucket_ms / granularity_ms` on success. Shared by the store and
/// the sink's backfill path so both reject the same inputs.
pub fn validate_window(
    granularity_ms: u64,
    start_ms: f64,
    end_ms: f64,
    bucket_ms: u64,
) -> Result<i64, String> {
    if bucket_ms == 0 {
        return Err("bucket width must be positive".into());
    }
    if !bucket_ms.is_multiple_of(granularity_ms) {
        return Err(format!(
            "bucket width {bucket_ms} ms must be a multiple of the sketch granularity \
             {granularity_ms} ms"
        ));
    }
    if !start_ms.is_finite() || !end_ms.is_finite() {
        return Err("window bounds must be finite".into());
    }
    if start_ms > end_ms {
        return Err(format!("reversed window: start {start_ms} > end {end_ms}"));
    }
    Ok((bucket_ms / granularity_ms) as i64)
}

/// Buckets raw `(t_ms, delay_ms)` records (already filtered to one
/// node) into `bucket_ms`-wide sketches keyed by bucket start ms —
/// the backfill counterpart of [`AggStore::query_sketches`]. Records
/// outside the *widened* `[start_ms, end_ms)` window are skipped.
pub fn bucket_raw_records(
    records: impl IntoIterator<Item = (f64, f64)>,
    start_ms: f64,
    end_ms: f64,
    bucket_ms: u64,
) -> Result<BTreeMap<i64, DelaySketch>, String> {
    // Granularity 1: any positive bucket width is valid here.
    validate_window(1, start_ms, end_ms, bucket_ms)?;
    let b0 = (start_ms / bucket_ms as f64).floor() as i64;
    let b1 = (end_ms / bucket_ms as f64).ceil() as i64;
    let mut out: BTreeMap<i64, DelaySketch> = BTreeMap::new();
    for (t, delay) in records {
        if !t.is_finite() {
            continue;
        }
        let b = (t / bucket_ms as f64).floor() as i64;
        if b < b0 || b >= b1 {
            continue;
        }
        out.entry(b.saturating_mul(bucket_ms as i64))
            .or_default()
            .record(delay);
    }
    Ok(out)
}

/// Folds `from` into `into` bucket-by-bucket (used to combine sketch
/// coverage with result-log backfill).
pub fn merge_bucket_maps(into: &mut BTreeMap<i64, DelaySketch>, from: BTreeMap<i64, DelaySketch>) {
    for (k, s) in from {
        into.entry(k).or_default().merge(&s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(granularity_ms: u64, retention_buckets: usize) -> AggConfig {
        AggConfig {
            granularity_ms,
            retention_buckets,
        }
    }

    #[test]
    fn records_aggregate_into_aligned_buckets() {
        let mut store = AggStore::new(cfg(100, 1024));
        // Two sketch buckets inside one 200ms output bucket, one in
        // the next.
        store.record(3, 10.0, 1.0);
        store.record(3, 150.0, 3.0);
        store.record(3, 250.0, 5.0);
        let m = store.query_sketches(3, 0.0, 400.0, 200).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[&0].count(), 2);
        assert_eq!(m[&200].count(), 1);
        let buckets = render_buckets(&m);
        assert_eq!(buckets[0].start_ms, 0);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[0].mean, 2.0);
        assert_eq!(buckets[1].max, 5.0);
    }

    #[test]
    fn window_is_widened_to_bucket_alignment() {
        let mut store = AggStore::new(cfg(100, 1024));
        store.record(1, 10.0, 1.0);
        store.record(1, 390.0, 2.0);
        // Query [150, 250) with 200ms buckets widens to [0, 400).
        let m = store.query_sketches(1, 150.0, 250.0, 200).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let store = AggStore::new(cfg(100, 1024));
        assert!(store.query_sketches(1, 0.0, 100.0, 0).is_err());
        assert!(store.query_sketches(1, 0.0, 100.0, 150).is_err());
        assert!(store.query_sketches(1, 100.0, 0.0, 200).is_err());
        assert!(store.query_sketches(1, f64::NAN, 100.0, 200).is_err());
        assert!(store.query_sketches(1, 0.0, f64::INFINITY, 200).is_err());
        // Empty-but-valid window: clean empty result.
        assert!(store.query_sketches(1, 50.0, 50.0, 100).is_ok());
    }

    #[test]
    fn retention_prunes_oldest_and_reports_floor() {
        let mut store = AggStore::new(cfg(100, 2));
        store.record(9, 50.0, 1.0); // bucket 0
        store.record(9, 150.0, 1.0); // bucket 1
        assert_eq!(store.retention_floor_ms(9), None);
        store.record(9, 250.0, 1.0); // bucket 2 → bucket 0 pruned
        assert_eq!(store.retention_floor_ms(9), Some(100));
        // A late record for the pruned region is dropped, not
        // resurrected (backfill owns that range).
        store.record(9, 10.0, 7.0);
        let m = store.query_sketches(9, 0.0, 100.0, 100).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let mut store = AggStore::new(cfg(100, 3));
        for i in 0..20 {
            store.record(4, i as f64 * 60.0, 0.37 * i as f64);
            store.record(7, i as f64 * 90.0, 1.3 / (i + 1) as f64);
        }
        let parts = store.to_parts();
        let back = AggStore::from_parts(cfg(100, 3), &parts);
        assert_eq!(back.to_parts(), parts);
        assert_eq!(back.retention_floor_ms(4), store.retention_floor_ms(4));
        let a = store.query_sketches(4, 0.0, 2000.0, 200).unwrap();
        let b = back.query_sketches(4, 0.0, 2000.0, 200).unwrap();
        assert_eq!(render_buckets(&a), render_buckets(&b));
        for (x, y) in render_buckets(&a).iter().zip(render_buckets(&b).iter()) {
            assert_eq!(x.mean.to_bits(), y.mean.to_bits());
            assert_eq!(x.p99.to_bits(), y.p99.to_bits());
        }
    }

    #[test]
    fn granularity_mismatch_discards_snapshot() {
        let mut store = AggStore::new(cfg(100, 8));
        store.record(1, 50.0, 1.0);
        let parts = store.to_parts();
        let back = AggStore::from_parts(cfg(50, 8), &parts);
        assert_eq!(back.retained_buckets(), 0);
    }

    #[test]
    fn backfill_buckets_match_incremental_feeding() {
        let records: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 37.0, (i % 7) as f64 + 0.5))
            .collect();
        let mut store = AggStore::new(cfg(100, 4096));
        for &(t, d) in &records {
            store.record(2, t, d);
        }
        let live = store.query_sketches(2, 0.0, 2000.0, 200).unwrap();
        let cold = bucket_raw_records(records, 0.0, 2000.0, 200).unwrap();
        assert_eq!(render_buckets(&live), render_buckets(&cold));
    }

    #[test]
    fn merge_bucket_maps_combines_coverage() {
        let mut a = bucket_raw_records([(10.0, 1.0)], 0.0, 400.0, 200).unwrap();
        let b = bucket_raw_records([(20.0, 3.0), (210.0, 5.0)], 0.0, 400.0, 200).unwrap();
        merge_bucket_maps(&mut a, b);
        assert_eq!(a[&0].count(), 2);
        assert_eq!(a[&200].count(), 1);
    }
}
