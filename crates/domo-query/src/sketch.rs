//! Log-bucketed delay histogram with a documented quantile error bound.
//!
//! [`DelaySketch`] is the downsampled representation behind `AGG`
//! queries: positive delays land in geometric buckets with ratio
//! `γ = 10^(1/20)` (20 buckets per decade), non-positive delays share a
//! single `zeros` bucket, and exact `count`/`sum`/`min`/`max` ride
//! alongside so mean and extrema are never approximated. A quantile is
//! answered by walking the buckets to the requested rank and returning
//! the geometric midpoint of the bucket it lands in, clamped to the
//! exact `[min, max]` envelope.
//!
//! # Error bound
//!
//! A positive value `v` in bucket `i` satisfies `γ^i ≤ v < γ^(i+1)`,
//! and the bucket estimates `γ^(i+0.5)`. The worst relative error is
//! therefore `√γ − 1 = 10^(1/40) − 1 ≈ 5.93%` (at the bucket's lower
//! edge; the upper edge errs by `1 − 1/√γ ≈ 5.6%`). Because the exact
//! rank-`r` order statistic lives in the very bucket the walk stops in,
//! quantile estimates inherit the same per-value bound: they are within
//! 5.93% relative error of the exact quantile computed with the same
//! rank rule (`r = ⌈q·n⌉`). [`DelaySketch::relative_error_bound`]
//! exposes the constant so tests and docs cannot drift.

use std::collections::BTreeMap;

/// Buckets per decade. `γ = 10^(1/RESOLUTION)`.
const RESOLUTION: f64 = 20.0;

/// Log-bucketed histogram of delay samples (milliseconds, but the
/// sketch is unit-agnostic) with exact count/sum/min/max.
///
/// Merging two sketches gives exactly the sketch of the concatenated
/// sample streams (bucket counts and integer fields add; `sum` adds in
/// `f64`, so merge order affects `sum` only by float rounding).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DelaySketch {
    count: u64,
    zeros: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
}

/// Plain-data snapshot of a [`DelaySketch`], for checkpoint encoding.
///
/// `from_parts(to_parts())` reproduces the sketch bit-identically
/// (floats are expected to be persisted via `to_bits`).
#[derive(Debug, Clone, PartialEq)]
pub struct SketchParts {
    /// Total recorded samples.
    pub count: u64,
    /// Samples with value ≤ 0 (kept out of the log buckets).
    pub zeros: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Exact minimum (`+inf` when empty).
    pub min: f64,
    /// Exact maximum (`-inf` when empty).
    pub max: f64,
    /// `(bucket index, count)` pairs in ascending index order.
    pub buckets: Vec<(i32, u64)>,
}

impl SketchParts {
    /// Renders the parts as one ASCII line for the query protocol's
    /// `AGG … PARTS` replies: space-separated
    /// `count zeros <sum> <min> <max> idx:n idx:n …`, with every float
    /// spelled as its `to_bits` hex — so
    /// `decode_text(encode_text())` round-trips bit-identically, the
    /// same contract the checkpoint encoding keeps. No float ever goes
    /// through decimal formatting.
    pub fn encode_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{} {} {:016x} {:016x} {:016x}",
            self.count,
            self.zeros,
            self.sum.to_bits(),
            self.min.to_bits(),
            self.max.to_bits(),
        );
        for (idx, n) in &self.buckets {
            let _ = write!(s, " {idx}:{n}");
        }
        s
    }

    /// Parses [`SketchParts::encode_text`] output. `None` on any
    /// structural defect (wrong arity, unparsable field, unsorted or
    /// duplicate bucket indices) — a scatter-gather merger treats that
    /// as a malformed member reply, never a panic.
    pub fn decode_text(s: &str) -> Option<SketchParts> {
        let mut toks = s.split_whitespace();
        let count = toks.next()?.parse::<u64>().ok()?;
        let zeros = toks.next()?.parse::<u64>().ok()?;
        let mut float = || -> Option<f64> {
            let tok = toks.next()?;
            if tok.len() != 16 {
                return None;
            }
            Some(f64::from_bits(u64::from_str_radix(tok, 16).ok()?))
        };
        let sum = float()?;
        let min = float()?;
        let max = float()?;
        let mut buckets: Vec<(i32, u64)> = Vec::new();
        for tok in toks {
            let (idx, n) = tok.split_once(':')?;
            let idx = idx.parse::<i32>().ok()?;
            let n = n.parse::<u64>().ok()?;
            if buckets.last().is_some_and(|&(prev, _)| prev >= idx) {
                return None;
            }
            buckets.push((idx, n));
        }
        Some(SketchParts {
            count,
            zeros,
            sum,
            min,
            max,
            buckets,
        })
    }
}

impl DelaySketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            count: 0,
            zeros: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }

    /// Worst-case relative error of a quantile estimate vs the exact
    /// order statistic on positive data: `√γ − 1 ≈ 0.0593`.
    pub fn relative_error_bound() -> f64 {
        10f64.powf(0.5 / RESOLUTION) - 1.0
    }

    /// Bucket index holding a positive value: `⌊log10(v)·20⌋`.
    fn bucket_index(v: f64) -> i32 {
        (v.log10() * RESOLUTION).floor() as i32
    }

    /// Geometric midpoint of bucket `idx`: `γ^(idx+0.5)`.
    fn bucket_estimate(idx: i32) -> f64 {
        10f64.powf((idx as f64 + 0.5) / RESOLUTION)
    }

    /// Records one sample. NaN samples are ignored (they carry no
    /// ordering information and would poison min/max); values ≤ 0 go
    /// to the shared zeros bucket.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(Self::bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`), or `None`
    /// when empty.
    ///
    /// Uses the rank rule `r = ⌈q·count⌉` (clamped to at least 1) and
    /// returns the geometric midpoint of the bucket containing the
    /// rank-`r` smallest sample, clamped to the exact `[min, max]`
    /// envelope. Ranks landing in the zeros bucket estimate `0`,
    /// clamped likewise.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zeros;
        if rank <= seen {
            return Some(0f64.clamp(self.min, self.max));
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                return Some(Self::bucket_estimate(idx).clamp(self.min, self.max));
            }
        }
        // Unreachable when the bucket counts are consistent with
        // `count`, but a plain fallback beats a panic in the sink.
        Some(self.max)
    }

    /// Folds `other` into `self`. Bucket counts and integer fields
    /// add; `min`/`max` combine; `sum` adds in `f64`.
    pub fn merge(&mut self, other: &DelaySketch) {
        self.count += other.count;
        self.zeros += other.zeros;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Snapshot for persistence (buckets in ascending index order, so
    /// the encoding is deterministic).
    pub fn to_parts(&self) -> SketchParts {
        SketchParts {
            count: self.count,
            zeros: self.zeros,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self.buckets.iter().map(|(&i, &n)| (i, n)).collect(),
        }
    }

    /// Rebuilds a sketch from a snapshot, bit-identically.
    pub fn from_parts(parts: &SketchParts) -> Self {
        Self {
            count: parts.count,
            zeros: parts.zeros,
            sum: parts.sum,
            min: parts.min,
            max: parts.max,
            buckets: parts.buckets.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift-style generator (no external crates).
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            // splitmix64 step.
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z = z ^ (z >> 31);
            (z >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len() as f64;
        let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_has_no_stats() {
        let s = DelaySketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn every_sample_lands_in_exactly_one_bucket() {
        // Records values straddling bucket boundaries (powers of
        // γ = 10^(1/20)) exactly, slightly below, and slightly above,
        // plus zeros and negatives: the invariant is that zeros +
        // Σ bucket counts == count, i.e. each record incremented
        // exactly one bucket — including values that sit exactly on a
        // boundary.
        let mut s = DelaySketch::new();
        let mut n = 0u64;
        for k in -40..40i32 {
            let edge = 10f64.powf(k as f64 / 20.0);
            for v in [edge, edge * (1.0 - 1e-12), edge * (1.0 + 1e-12)] {
                s.record(v);
                n += 1;
            }
        }
        for v in [0.0, -1.0, -0.001] {
            s.record(v);
            n += 1;
        }
        let parts = s.to_parts();
        let bucketed: u64 = parts.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(parts.count, n);
        assert_eq!(
            parts.zeros + bucketed,
            n,
            "a sample landed in zero or two buckets"
        );
        // A boundary value must not be double-counted even against its
        // immediate neighbours: per-edge, the three samples around one
        // edge contribute exactly three bucket increments total.
        assert_eq!(parts.zeros, 3);
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut s = DelaySketch::new();
        s.record(f64::NAN);
        assert_eq!(s.count(), 0);
        s.record(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.max(), Some(2.0));
    }

    #[test]
    fn merge_is_associative_and_matches_concatenation() {
        // Integer-valued samples keep `sum` exactly representable, so
        // associativity holds bit-for-bit on every field.
        let mut rng = Rng(42);
        let make = |rng: &mut Rng, n: usize| -> (DelaySketch, Vec<f64>) {
            let mut s = DelaySketch::new();
            let mut vs = Vec::new();
            for _ in 0..n {
                let v = (rng.next_f64() * 1000.0).floor();
                s.record(v);
                vs.push(v);
            }
            (s, vs)
        };
        let (a, va) = make(&mut rng, 137);
        let (b, vb) = make(&mut rng, 251);
        let (c, vc) = make(&mut rng, 89);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // ...and equal to recording the concatenated stream.
        let mut all = DelaySketch::new();
        for v in va.iter().chain(&vb).chain(&vc) {
            all.record(*v);
        }
        assert_eq!(left.to_parts().buckets, all.to_parts().buckets);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
        assert_eq!(left.sum().to_bits(), all.sum().to_bits());
    }

    #[test]
    fn quantiles_within_documented_relative_error_on_random_data() {
        let bound = DelaySketch::relative_error_bound();
        assert!(bound < 0.062, "documented bound drifted: {bound}");
        for seed in 1..=5u64 {
            let mut rng = Rng(seed);
            let mut s = DelaySketch::new();
            let mut vs = Vec::new();
            for _ in 0..2000 {
                // Log-uniform over ~5 decades: exercises many buckets.
                let v = 10f64.powf(rng.next_f64() * 5.0 - 2.0);
                s.record(v);
                vs.push(v);
            }
            vs.sort_by(f64::total_cmp);
            for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
                let exact = exact_quantile(&vs, q);
                let est = s.quantile(q).unwrap();
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel <= bound + 1e-12,
                    "seed {seed} q {q}: est {est} vs exact {exact} (rel {rel:.4} > {bound:.4})"
                );
            }
        }
    }

    #[test]
    fn quantile_clamps_to_exact_extrema() {
        let mut s = DelaySketch::new();
        for v in [5.0, 5.0, 5.0] {
            s.record(v);
        }
        // A single-value distribution: every quantile is exactly 5.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile(q), Some(5.0));
        }
    }

    #[test]
    fn zeros_bucket_quantiles() {
        let mut s = DelaySketch::new();
        for v in [0.0, 0.0, 0.0, 10.0] {
            s.record(v);
        }
        assert_eq!(s.quantile(0.5), Some(0.0));
        let p100 = s.quantile(1.0).unwrap();
        assert!((p100 - 10.0).abs() / 10.0 <= DelaySketch::relative_error_bound());
    }

    #[test]
    fn parts_round_trip_bit_identically() {
        let mut rng = Rng(7);
        let mut s = DelaySketch::new();
        for _ in 0..500 {
            s.record(rng.next_f64() * 100.0 - 1.0);
        }
        let parts = s.to_parts();
        let back = DelaySketch::from_parts(&parts);
        assert_eq!(s, back);
        assert_eq!(s.sum().to_bits(), back.sum().to_bits());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                s.quantile(q).unwrap().to_bits(),
                back.quantile(q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn text_codec_round_trips_bit_identically() {
        let mut rng = Rng(11);
        let mut s = DelaySketch::new();
        for _ in 0..300 {
            s.record(rng.next_f64() * 50.0 - 0.5);
        }
        let parts = s.to_parts();
        let line = parts.encode_text();
        assert!(line.is_ascii());
        assert!(!line.contains('\n'));
        let back = SketchParts::decode_text(&line).unwrap();
        assert_eq!(back, parts);
        assert_eq!(DelaySketch::from_parts(&back), s);
        // The empty sketch (±inf min/max) survives the trip too.
        let empty = DelaySketch::new().to_parts();
        let back = SketchParts::decode_text(&empty.encode_text()).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.min.to_bits(), f64::INFINITY.to_bits());
    }

    #[test]
    fn text_codec_rejects_malformed_lines() {
        for bad in [
            "",
            "1",
            "1 2 3",
            "1 2 zzzz zzzz zzzz",
            "1 2 0000000000000000 0000000000000000",
            "1 2 0000000000000000 0000000000000000 0000000000000000 nonsense",
            "1 2 0000000000000000 0000000000000000 0000000000000000 5:1 4:2",
            "1 2 0000000000000000 0000000000000000 0000000000000000 5:1 5:2",
        ] {
            assert!(SketchParts::decode_text(bad).is_none(), "accepted {bad:?}");
        }
    }
}
