//! Live query layer for the Domo sink: subscription fan-out and
//! time-series aggregation.
//!
//! The sink's query port is request/response; this crate supplies the
//! two pieces that turn the result pipeline into a live monitoring
//! product:
//!
//! | module | provides |
//! |--------|----------|
//! | [`sketch`] | [`DelaySketch`]: a log-bucketed delay histogram with exact count/sum/min/max and a documented quantile error bound |
//! | [`series`] | [`AggStore`]: per-node time-bucketed sketches with retention, snapshot/restore, and windowed aggregation queries |
//! | [`sub`]    | [`SubHub`]: bounded drop-oldest fan-out of emitted results to live subscribers with lag accounting and slow-consumer shedding |
//!
//! The crate is dependency-free (not even on the other workspace
//! crates): events carry plain `u16` node ids and `f64` hop times, so
//! the sink adapts its own types at the boundary. Everything here is
//! deterministic and snapshot state round-trips bit-identically, which
//! is what lets the sink's checkpoint/recovery machinery extend to the
//! aggregation state without weakening its bit-exactness guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod series;
pub mod sketch;
pub mod sub;

pub use series::{render_buckets, AggBucket, AggConfig, AggParts, AggStore};
pub use sketch::{DelaySketch, SketchParts};
pub use sub::{Event, PublishOutcome, RecvOutcome, SubFilter, SubHub, SubOptions, Subscription};
