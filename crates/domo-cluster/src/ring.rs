//! Seeded consistent-hash ring with virtual nodes (DESIGN.md §17.1).
//!
//! The ring maps `(tenant, subtree-root)` keys to cluster members so
//! that every process holding the same member list — routers, clients,
//! sinks — computes identical placement with no coordinator. Each
//! member contributes [`DEFAULT_VNODES`] pseudo-random points on a
//! `u64` circle; a key hashes to a point and is owned by the first
//! member point at or after it (wrapping). Two properties follow:
//!
//! * **balance** — with 64 vnodes per member the per-member key share
//!   stays within ±20% of fair (property-tested below);
//! * **minimal movement** — adding or removing a member remaps only
//!   the keys adjacent to that member's points, a `~1/N` fraction
//!   (property-tested at `< 1.5/N`), so rebalancing replays touch a
//!   bounded slice of the key space.
//!
//! Members are kept sorted, so the ring is a pure function of the
//! member *set* (plus seed and vnode count), not of insertion order —
//! two routers that learned the membership in different orders still
//! agree on every owner.

/// Virtual nodes (ring points) per member. 64 keeps the balance bound
/// in §17.1 while membership changes stay cheap to rebuild.
pub const DEFAULT_VNODES: u32 = 64;

/// Default placement seed. Deployments that want a different placement
/// (e.g. to decorrelate two overlapping clusters) pick their own seed;
/// every participant of one cluster must share it.
pub const DEFAULT_SEED: u64 = 0xD0_40_14_D0_DE_4C_49_FA;

/// `splitmix64` finalizer: a full-avalanche bijection on `u64`, the
/// same mixer the replay client's deterministic RNG uses.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a-64 fold of a member name, seeded; the vnode index is then
/// mixed in through two `splitmix64` rounds to spread one member's
/// points across the whole circle.
fn member_point(seed: u64, name: &str, vnode: u32) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(splitmix64(h) ^ u64::from(vnode).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A deterministic consistent-hash ring over named members.
///
/// Keys are `(tenant, subtree-root)` pairs — the unit of placement is
/// a tenant's source subtree, matching the sink's shard routing, so a
/// whole subtree's constraint set always lands on one member.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: u32,
    seed: u64,
    /// Sorted, deduplicated member names.
    members: Vec<String>,
    /// `(point, index into members)`, sorted by point.
    entries: Vec<(u64, usize)>,
}

impl Ring {
    /// An empty ring with explicit vnode count and seed. `vnodes` is
    /// clamped to at least 1.
    pub fn with_params(vnodes: u32, seed: u64) -> Ring {
        Ring {
            vnodes: vnodes.max(1),
            seed,
            members: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// A ring over `members` with [`DEFAULT_VNODES`] and
    /// [`DEFAULT_SEED`]. Duplicate names collapse; order is
    /// irrelevant.
    pub fn new<I, S>(members: I) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut ring = Ring::with_params(DEFAULT_VNODES, DEFAULT_SEED);
        for m in members {
            ring.add_member(&m.into());
        }
        ring
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member names, sorted.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Adds `name`; returns `false` (and changes nothing) if it is
    /// already a member.
    pub fn add_member(&mut self, name: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(name)) {
            Ok(_) => false,
            Err(pos) => {
                self.members.insert(pos, name.to_string());
                self.rebuild();
                true
            }
        }
    }

    /// Removes `name`; returns `false` if it was not a member.
    pub fn remove_member(&mut self, name: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(name)) {
            Ok(pos) => {
                self.members.remove(pos);
                self.rebuild();
                true
            }
            Err(_) => false,
        }
    }

    fn rebuild(&mut self) {
        self.entries.clear();
        self.entries
            .reserve(self.members.len() * self.vnodes as usize);
        for (idx, name) in self.members.iter().enumerate() {
            for v in 0..self.vnodes {
                self.entries.push((member_point(self.seed, name, v), idx));
            }
        }
        // Ties (astronomically unlikely) resolve by member index so
        // the ring stays a pure function of the member set.
        self.entries.sort_unstable();
    }

    /// The placement hash of key `(tenant, root)` — exposed so tests
    /// and the rebalancing protocol can reason about point adjacency.
    pub fn key_hash(&self, tenant: u16, root: u16) -> u64 {
        splitmix64(
            self.seed
                ^ (u64::from(tenant) << 16 | u64::from(root)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Index (into [`Ring::members`]) of the member owning
    /// `(tenant, root)`, or `None` on an empty ring.
    pub fn owner_index(&self, tenant: u16, root: u16) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let h = self.key_hash(tenant, root);
        let pos = self.entries.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.entries[if pos == self.entries.len() { 0 } else { pos }];
        Some(idx)
    }

    /// Name of the member owning `(tenant, root)`, or `None` on an
    /// empty ring.
    pub fn owner(&self, tenant: u16, root: u16) -> Option<&str> {
        self.owner_index(tenant, root)
            .map(|i| self.members[i].as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn member_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7100 + i)).collect()
    }

    /// Every `(tenant, root)` key the balance/movement properties are
    /// checked over: 2 tenants × 2048 subtree roots.
    fn keys() -> Vec<(u16, u16)> {
        let mut out = Vec::new();
        for tenant in 0..2u16 {
            for root in 1..=2048u16 {
                out.push((tenant, root));
            }
        }
        out
    }

    #[test]
    fn ring_is_order_independent_and_deterministic() {
        let a = Ring::new(["c", "a", "b"]);
        let b = Ring::new(["b", "b", "a", "c"]);
        assert_eq!(a.members(), b.members());
        for (t, r) in keys() {
            assert_eq!(a.owner(t, r), b.owner(t, r));
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::with_params(64, DEFAULT_SEED);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(0, 1), None);
        assert_eq!(ring.owner_index(3, 9), None);
    }

    /// ISSUE property 1: at 64 vnodes the per-member share of keys
    /// stays within ±20% of fair, for every cluster size the smoke and
    /// bench harnesses use.
    #[test]
    fn key_balance_within_twenty_percent_at_64_vnodes() {
        let keys = keys();
        for n in [2usize, 3, 4, 5] {
            let ring = Ring::new(member_names(n));
            assert_eq!(ring.vnodes, DEFAULT_VNODES);
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for &(t, r) in &keys {
                *counts.entry(ring.owner_index(t, r).unwrap()).or_default() += 1;
            }
            let fair = keys.len() as f64 / n as f64;
            for idx in 0..n {
                let got = *counts.get(&idx).unwrap_or(&0) as f64;
                let dev = (got - fair).abs() / fair;
                assert!(
                    dev <= 0.20,
                    "member {idx}/{n} holds {got} keys, fair {fair:.0}, deviation {:.1}%",
                    dev * 100.0
                );
            }
        }
    }

    /// ISSUE property 2: membership changes remap a minimal slice of
    /// the key space — fewer than `1.5/N` of keys move when going
    /// between `N` and `N±1` members, and every key that moves on an
    /// add moves *to* the added member (never between survivors).
    #[test]
    fn membership_change_moves_fewer_than_1_5_over_n_keys() {
        let keys = keys();
        for n in [2usize, 3, 4, 8] {
            let names = member_names(n + 1);
            let mut ring = Ring::new(names[..n].to_vec());
            let before: Vec<String> = keys
                .iter()
                .map(|&(t, r)| ring.owner(t, r).unwrap().to_string())
                .collect();

            // Add a member: only keys adjacent to its points move.
            assert!(ring.add_member(&names[n]));
            let mut moved = 0usize;
            for (i, &(t, r)) in keys.iter().enumerate() {
                let now = ring.owner(t, r).unwrap();
                if now != before[i] {
                    moved += 1;
                    assert_eq!(now, names[n], "key ({t},{r}) moved between survivors");
                }
            }
            let bound = (1.5 / (n + 1) as f64) * keys.len() as f64;
            assert!(
                (moved as f64) < bound,
                "add to {n}: {moved} keys moved, bound {bound:.0}"
            );

            // Remove it again: exactly the keys it held move back, and
            // every other placement is untouched.
            assert!(ring.remove_member(&names[n]));
            for (i, &(t, r)) in keys.iter().enumerate() {
                assert_eq!(ring.owner(t, r).unwrap(), before[i]);
            }
            assert!(((moved as f64) / keys.len() as f64) < 1.5 / (n + 1) as f64);
        }
    }

    #[test]
    fn add_and_remove_report_membership_changes() {
        let mut ring = Ring::new(["a"]);
        assert!(!ring.add_member("a"));
        assert!(ring.add_member("b"));
        assert!(!ring.remove_member("zzz"));
        assert!(ring.remove_member("a"));
        assert_eq!(ring.members(), ["b".to_string()]);
        // A one-member ring owns everything.
        assert_eq!(ring.owner(1, 7), Some("b"));
    }
}
