//! Tenant namespace arithmetic (DESIGN.md §17.2).
//!
//! A tenant is one monitored network. Rather than widening every pid,
//! dedup set, WAL record, and result-log key with a tenant column, the
//! cluster layer *strides* the existing `u16` node-id space: tenant
//! `t`'s local node `n` becomes internal node `t * TENANT_STRIDE + n`.
//! The sink node is the shared root of every monitored tree — the
//! sanitizer requires every path to terminate at node `0` — so local
//! node `0` maps to internal node `0` for every tenant.
//!
//! The payoff is that every tenant-agnostic subsystem becomes
//! tenant-partitioned for free: dedup sets, shard routing, the WAL,
//! the result log, `RANGE`/`AGG` queries, and subscriptions all key on
//! node ids or pids that now embed the tenant. Only the wire header
//! (v2 frames carry the tenant explicitly) and the stats surface need
//! to know tenants exist.

/// Internal node-id stride per tenant: tenant `t` owns internal ids
/// `t * 4096 + 1 ..= t * 4096 + 4095` (plus the shared sink node `0`).
pub const TENANT_STRIDE: u16 = 4096;

/// Number of tenant namespaces that fit in the `u16` id space
/// (`65536 / TENANT_STRIDE`). Tenant ids are `0..MAX_TENANTS`.
pub const MAX_TENANTS: u16 = u16::MAX / TENANT_STRIDE + 1;

/// The shared sink node id: every tenant's paths terminate here, and
/// it namespaces to itself.
pub const SINK_NODE: u16 = 0;

/// Maps tenant-local node `local` of tenant `tenant` to its internal
/// id. Returns `None` when the pair does not fit the namespace:
/// `tenant` must be below [`MAX_TENANTS`] and `local` below
/// [`TENANT_STRIDE`]. The sink node (`local == 0`) is shared and maps
/// to `0` for every valid tenant.
pub fn namespace_node(tenant: u16, local: u16) -> Option<u16> {
    if tenant >= MAX_TENANTS || local >= TENANT_STRIDE {
        return None;
    }
    if local == SINK_NODE {
        return Some(SINK_NODE);
    }
    Some(tenant * TENANT_STRIDE + local)
}

/// The tenant that owns internal node id `node`. The shared sink node
/// `0` reports tenant `0`; legacy (v1-wire) deployments live entirely
/// in tenant `0` because their ids never reach [`TENANT_STRIDE`].
pub fn tenant_of(node: u16) -> u16 {
    node / TENANT_STRIDE
}

/// The tenant-local id of internal node `node`.
pub fn local_of(node: u16) -> u16 {
    node % TENANT_STRIDE
}

/// Splits internal node `node` into `(tenant, local)`;
/// `namespace_node` inverts it for every valid pair.
pub fn split_node(node: u16) -> (u16, u16) {
    (tenant_of(node), local_of(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_round_trips_every_valid_pair() {
        for tenant in 0..MAX_TENANTS {
            // Non-sink locals round-trip through split_node exactly.
            for local in [1u16, 2, 77, TENANT_STRIDE - 1] {
                let node = namespace_node(tenant, local).unwrap();
                assert_eq!(split_node(node), (tenant, local));
            }
            // The sink node is shared: every tenant maps it to 0.
            assert_eq!(namespace_node(tenant, SINK_NODE), Some(SINK_NODE));
        }
    }

    #[test]
    fn namespaces_are_disjoint() {
        let a = namespace_node(1, 5).unwrap();
        let b = namespace_node(2, 5).unwrap();
        assert_ne!(a, b);
        assert_eq!(tenant_of(a), 1);
        assert_eq!(tenant_of(b), 2);
        assert_eq!(local_of(a), local_of(b));
    }

    #[test]
    fn out_of_range_pairs_are_rejected() {
        assert_eq!(namespace_node(MAX_TENANTS, 1), None);
        assert_eq!(namespace_node(0, TENANT_STRIDE), None);
        assert_eq!(namespace_node(u16::MAX, u16::MAX), None);
    }

    #[test]
    fn legacy_ids_all_live_in_tenant_zero() {
        for node in [0u16, 1, 9, TENANT_STRIDE - 1] {
            assert_eq!(tenant_of(node), 0);
            assert_eq!(local_of(node), node);
        }
    }

    #[test]
    fn stride_covers_the_id_space_exactly() {
        assert_eq!(u32::from(MAX_TENANTS) * u32::from(TENANT_STRIDE), 65536);
    }
}
