//! Coordinator-free clustering primitives for Domo sinks
//! (DESIGN.md §17).
//!
//! A Domo deployment shards by **source subtree**: every collected
//! packet names the last relay before the sink (its subtree root), and
//! all packets of one subtree must land on the same sink process so
//! that window solves see complete constraint sets. This crate supplies
//! the two deterministic building blocks that let N independent
//! `domo-sink` processes agree on that placement with no coordinator:
//!
//! | module | provides |
//! |--------|----------|
//! | [`tenant`] | the tenant namespace arithmetic: monitored networks share one sink's `u16` node-id space by striding it (`internal = tenant * 4096 + local`), with sink node `0` shared |
//! | [`ring`]   | [`Ring`]: a seeded consistent-hash ring with virtual nodes over `(tenant, subtree-root)` keys, balanced to ±20% at 64 vnodes and minimal-movement under membership change |
//!
//! Everything is a pure function of `(seed, members, key)`: any router,
//! client, or sink that holds the same member list computes the same
//! owner for every packet, across processes and restarts. That
//! determinism is what makes the cluster coordinator-free — membership
//! is configuration, not consensus — and it composes with the sink's
//! pid-dedup to make ownership moves exactly-once: a router that
//! re-replays a key range after a membership change can only ever
//! create duplicates that the new owner's dedup set absorbs.
//!
//! The crate is dependency-free (not even on other workspace crates):
//! keys are plain `u16` pairs and members are strings, so the sink and
//! client layers adapt their own types at the boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod tenant;

pub use ring::{Ring, DEFAULT_SEED, DEFAULT_VNODES};
pub use tenant::{
    local_of, namespace_node, split_node, tenant_of, MAX_TENANTS, SINK_NODE, TENANT_STRIDE,
};
