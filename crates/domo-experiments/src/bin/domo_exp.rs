//! `domo-exp` — regenerate the Domo paper's tables and figures.
//!
//! ```text
//! domo-exp <experiment> [--nodes N] [--seed S] [--fast K] [--threads T]
//!          [--metrics-json PATH]
//! domo-exp bench [--nodes N] [--seed S] [--out PATH] [--baseline PATH]
//! domo-exp obsbench [--nodes N] [--seed S] [--out PATH] [--max-delta PCT]
//! domo-exp storebench [--nodes N] [--seed S] [--out PATH] [--baseline PATH]
//! domo-exp querybench [--nodes N] [--seed S] [--out PATH] [--baseline PATH]
//! domo-exp tracebench [--nodes N] [--seed S] [--out PATH] [--baseline PATH]
//!          [--max-delta PCT]
//! domo-exp benchall [--sink-bin PATH]
//! domo-exp chaos [--quick] [--nodes N] [--seed S] [--sink-bin PATH]
//! domo-exp clustersmoke [--quick] [--nodes N] [--seed S] [--sink-bin PATH]
//! domo-exp clusterbench [--nodes N] [--seed S] [--out PATH] [--baseline PATH]
//!
//! experiments:
//!   fig1     per-node delay map at two times
//!   fig6     accuracy / bounds / displacement vs MNT & MessageTracing
//!   fig7     the packet-loss sweep (10/20/30 %)
//!   fig8     the network-scale sweep (100/225/400 nodes)
//!   fig9     the effective-time-window-ratio sweep
//!   fig10    the graph-cut-size sweep
//!   table1   overhead comparison (plus measured PC-side cost)
//!   ablation quality ablations (FIFO mode, BLP, bound method, MNT oracle)
//!   workload trace/topology characterization + constraint diagnostics
//!   robust   the fault-injection sweep (all fault classes, rising rates)
//!   online   the domo-sink online service vs the offline pipeline
//!   bench    estimator window-solve throughput across thread counts and
//!            warm-start settings; gates on --baseline (fails if
//!            single-thread throughput regressed >20%), then writes the
//!            fresh numbers to --out (default BENCH_estimator.json)
//!   obsbench estimator throughput with the metrics recorder enabled vs
//!            disabled; fails if the enabled run is more than
//!            --max-delta percent slower (default 5), then writes the
//!            numbers to --out (default BENCH_obs.json)
//!   storebench
//!            durable-store write-path throughput: WAL appends per
//!            second under each fsync policy plus result-log appends;
//!            gates on --baseline (fails if `fsync interval` WAL
//!            throughput regressed >20%), then writes the fresh
//!            numbers to --out (default BENCH_store.json)
//!   querybench
//!            live-query path: SubHub fan-out throughput at 1/8/64
//!            subscribers plus AGG latency for a sketch-served vs
//!            backfilled window; gates on --baseline (fails if the
//!            8-subscriber deliveries/s regressed >20%), then writes
//!            the numbers to --out (default BENCH_query.json)
//!   tracebench
//!            per-packet trace-sampling overhead: (1) the cost of a
//!            disabled `trace::stamp` call, scaled by the hooks a
//!            packet crosses, against the measured per-packet pipeline
//!            cost (gate: <=1%); (2) the full in-process pipeline with
//!            the sampler at 1/256 vs off, judged like obsbench on
//!            paired ratios (gate: <=--max-delta percent, default 5);
//!            (3) a fault-induced degrade must land a parseable
//!            `flight-*.jsonl` dump containing the triggering event.
//!            Gates on --baseline (fails if the tracing-off pipeline
//!            throughput regressed >20%), then splices a `"trace"`
//!            section into --out (default BENCH_obs.json), preserving
//!            the obsbench fields
//!   benchall regenerates every committed BENCH_*.json in one go
//!            (bench, obsbench, tracebench, storebench, querybench,
//!            plus `domo-sink bench` via the sibling binary) without
//!            regression gates — the refresh path after an intentional
//!            perf change — and prints a one-line summary per file
//!   chaos    the survival soak: spawns a durable `domo-sink serve`
//!            child with an injected storage fault storm AND a
//!            scheduled shard-worker panic, streams a trace at it over
//!            TCP, and gates on (1) the child never exiting on its
//!            own, (2) exact accounting — emitted + dropped ==
//!            ingested, (3) the post-heal, post-SIGKILL recovered
//!            state matching an undisturbed in-process run
//!            bit-identically. `--quick` shrinks the trace and storm
//!            for CI (`scripts/check.sh` gate 10); `--sink-bin` (or
//!            `$DOMO_SINK_BIN`) overrides the sibling-binary lookup
//!   clustersmoke
//!            the multi-sink acceptance gate (DESIGN.md §17,
//!            `scripts/check.sh` gate 14): spawns a 3-member cluster of
//!            durable `domo-sink serve` children, streams a 2-tenant
//!            workload through the consistent-hash router, SIGKILLs
//!            the busiest member mid-replay, and gates on (1) exactly
//!            one failover with zero spool drops and zero duplicate
//!            quarantines, (2) per-tenant reconstructions recovered
//!            from the survivors bit-identical to a single-process
//!            reference running the same deterministic placement,
//!            (3) intact per-member tenant accounting, (4) a
//!            scatter-gather AGG within the sketch's documented error
//!            bound of the offline exact quantiles
//!   clusterbench
//!            router fan-out throughput at 1/2/4 members against
//!            in-process sinks; gates on --baseline (fails if any
//!            member count regressed >20%), then writes the numbers
//!            to --out (default BENCH_cluster.json)
//!   all      every figure/table above, in order
//! ```
//!
//! `--threads T` sets `EstimatorConfig::threads` (parallel window
//! chains) for every experiment; results are bit-identical for any `T`.
//! `--metrics-json PATH` dumps every metric the run recorded as JSON
//! Lines after the experiment finishes (`-` for stdout).

use domo_core::estimator::{try_estimate, EstimatorConfig};
use domo_core::TraceView;
use domo_experiments::figures;
use domo_experiments::scenario::Scenario;
use domo_net::{run_simulation, NetworkConfig};
use std::time::Instant;

struct Args {
    experiment: String,
    nodes: usize,
    seed: u64,
    fast: u64,
    threads: usize,
    out: String,
    baseline: Option<String>,
    metrics_json: Option<String>,
    max_delta: f64,
    quick: bool,
    sink_bin: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: String::new(),
        nodes: 100,
        seed: 1,
        fast: 1,
        threads: 1,
        out: "BENCH_estimator.json".into(),
        baseline: None,
        metrics_json: None,
        max_delta: 5.0,
        quick: false,
        sink_bin: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let Some(exp) = it.next() else {
        return Err("missing experiment name".into());
    };
    args.experiment = exp.clone();
    // The benches work a much smaller trace than the paper scenarios.
    if args.experiment == "bench"
        || args.experiment == "obsbench"
        || args.experiment == "storebench"
        || args.experiment == "querybench"
        || args.experiment == "tracebench"
    {
        args.nodes = 25;
        args.seed = 7;
    }
    if args.experiment == "obsbench" || args.experiment == "tracebench" {
        args.out = "BENCH_obs.json".into();
    }
    if args.experiment == "storebench" {
        args.out = "BENCH_store.json".into();
    }
    if args.experiment == "querybench" {
        args.out = "BENCH_query.json".into();
    }
    if args.experiment == "chaos" || args.experiment == "clustersmoke" {
        args.nodes = 16;
        args.seed = 5;
    }
    if args.experiment == "clusterbench" {
        args.nodes = 25;
        args.seed = 7;
        args.out = "BENCH_cluster.json".into();
    }
    while let Some(flag) = it.next() {
        if flag == "--quick" {
            args.quick = true;
            if args.experiment == "chaos" || args.experiment == "clustersmoke" {
                args.nodes = 9;
            }
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--nodes" => args.nodes = value.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--fast" => args.fast = value.parse().map_err(|e| format!("--fast: {e}"))?,
            "--threads" => args.threads = value.parse().map_err(|e| format!("--threads: {e}"))?,
            "--out" => args.out = value.clone(),
            "--baseline" => args.baseline = Some(value.clone()),
            "--metrics-json" => args.metrics_json = Some(value.clone()),
            "--max-delta" => {
                args.max_delta = value.parse().map_err(|e| format!("--max-delta: {e}"))?;
            }
            "--sink-bin" => args.sink_bin = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.fast == 0 {
        return Err("--fast must be positive".into());
    }
    if args.threads == 0 {
        return Err("--threads must be positive".into());
    }
    Ok(args)
}

fn base_scenario(args: &Args) -> Scenario {
    let mut scenario = Scenario::paper(args.nodes, args.seed).scaled_down(args.fast);
    scenario.estimator.threads = args.threads;
    scenario
}

/// Seconds of the *fastest* call of `f`, repeated until the
/// measurement is at least 200 ms long (and at least 3 iterations).
/// The minimum, not the mean, is what the regression gate compares:
/// transient load on a shared machine only ever slows iterations down,
/// so the fastest one is the most reproducible estimate of the code's
/// own cost.
fn time_per_iter(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut iters = 0u32;
    let mut best = f64::INFINITY;
    while iters < 3 || start.elapsed().as_millis() < 200 {
        let one = Instant::now();
        f();
        best = best.min(one.elapsed().as_secs_f64());
        iters += 1;
    }
    best
}

/// Median of a non-empty sample (sorts in place; even-length samples
/// average the middle pair).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Pulls `"single_thread_windows_per_sec": <float>` out of a previously
/// committed bench file (the JSON is flat and machine-written, so a
/// substring scan is enough — no JSON dependency needed).
fn baseline_throughput(json: &str) -> Option<f64> {
    let key = "\"single_thread_windows_per_sec\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Estimator window-solve throughput across thread counts and
/// warm-start settings. Gates on `--baseline`, then writes `--out`.
fn bench(args: &Args) -> Result<(), String> {
    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    if trace.packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    let view = TraceView::new(trace.packets.clone());
    let reference = try_estimate(&view, &EstimatorConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "bench: {} packets, {} unknowns, {} windows ({} nodes, seed {})",
        trace.packets.len(),
        view.vars().len(),
        reference.stats.windows,
        args.nodes,
        args.seed
    );

    let mut rows = Vec::new();
    let mut single_thread_wps = None;
    for warm_start in [true, false] {
        for threads in [1usize, 2, 4, 8] {
            let cfg = EstimatorConfig {
                threads,
                warm_start,
                ..EstimatorConfig::default()
            };
            let seconds = time_per_iter(|| {
                let _ = try_estimate(&view, &cfg);
            });
            let est = try_estimate(&view, &cfg).map_err(|e| e.to_string())?;
            let wps = est.stats.windows as f64 / seconds;
            if threads == 1 && warm_start {
                single_thread_wps = Some(wps);
            }
            println!(
                "bench: threads {threads} warm {warm_start:5}: {seconds:.3} s/solve, \
                 {wps:.1} windows/s ({} warm hits)",
                est.stats.warm_hits
            );
            rows.push(format!(
                "    {{\"threads\": {threads}, \"warm_start\": {warm_start}, \
                 \"seconds_per_solve\": {seconds:.6}, \"windows_per_sec\": {wps:.1}, \
                 \"warm_hits\": {}}}",
                est.stats.warm_hits
            ));
        }
    }
    let single = single_thread_wps.ok_or("missing single-thread row")?;

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                let committed = baseline_throughput(&json)
                    .ok_or_else(|| format!("{path}: no single_thread_windows_per_sec"))?;
                let floor = committed * 0.8;
                if single < floor {
                    return Err(format!(
                        "single-thread throughput regressed >20%: {single:.1} windows/s \
                         vs committed {committed:.1} (floor {floor:.1}) in {path}"
                    ));
                }
                println!(
                    "bench: single-thread {single:.1} windows/s vs committed \
                     {committed:.1} — within the 20% regression budget"
                );
            }
            Err(e) => {
                // A missing baseline is the bootstrap case, not a failure.
                println!("bench: no baseline at {path} ({e}); writing a fresh one");
            }
        }
    }

    // Thread-count scaling is only meaningful relative to the cores the
    // measuring host actually had; record it so a flat curve from a
    // small box isn't misread as a scheduler regression.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"estimator_windows\",\n  \"nodes\": {},\n  \"seed\": {},\n  \
         \"host_cpus\": {cpus},\n  \
         \"packets\": {},\n  \"unknowns\": {},\n  \"windows\": {},\n  \
         \"single_thread_windows_per_sec\": {single:.1},\n  \"rows\": [\n{}\n  ]\n}}\n",
        args.nodes,
        args.seed,
        trace.packets.len(),
        view.vars().len(),
        reference.stats.windows,
        rows.join(",\n")
    );
    std::fs::write(&args.out, json).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("bench: wrote {}", args.out);
    Ok(())
}

/// Pulls `"wal_interval_appends_per_sec": <float>` out of a previously
/// committed storebench file (flat machine-written JSON, substring scan
/// — same approach as [`baseline_throughput`]).
fn store_baseline_throughput(json: &str) -> Option<f64> {
    let key = "\"wal_interval_appends_per_sec\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Durable-store write-path throughput: how fast the sink can journal
/// wire frames into the WAL under each fsync policy, and how fast the
/// result log absorbs reconstruction records. `fsync interval` is the
/// shipping default, so that number is the regression gate.
fn store_bench(args: &Args) -> Result<(), String> {
    use domo_store::wal::WalConfig;
    use domo_store::{FsyncPolicy, ResultStore, ResultStoreConfig, Wal};

    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    if trace.packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    // The journaled unit is the wire frame, exactly what SinkService
    // appends at ingest.
    let mut frames: Vec<Vec<u8>> = Vec::with_capacity(trace.packets.len());
    for p in &trace.packets {
        let mut f = Vec::new();
        domo_sink::encode_packet(p, &mut f).map_err(|e| format!("encode: {e}"))?;
        frames.push(f);
    }
    let frame_bytes: usize = frames.iter().map(Vec::len).sum();
    // Repeat the trace until a batch is big enough to time meaningfully
    // (fsync=always is gated per-append, so it gets a smaller batch).
    let target = 4096usize.max(frames.len());
    let batch: Vec<&[u8]> = frames
        .iter()
        .map(Vec::as_slice)
        .cycle()
        .take(target)
        .collect();
    let always_batch: Vec<&[u8]> = frames
        .iter()
        .map(Vec::as_slice)
        .cycle()
        .take(256.min(target))
        .collect();
    println!(
        "storebench: {} packets -> {} wire bytes/frame avg, batches of {} (always: {})",
        frames.len(),
        frame_bytes / frames.len().max(1),
        batch.len(),
        always_batch.len()
    );

    let scratch = std::env::temp_dir().join(format!("domo-storebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut rows = Vec::new();
    let mut interval_aps = None;
    for (label, policy, batch) in [
        ("never", FsyncPolicy::Never, &batch),
        ("interval:64", FsyncPolicy::Interval(64), &batch),
        ("always", FsyncPolicy::Always, &always_batch),
    ] {
        let mut round = 0u32;
        let seconds = time_per_iter(|| {
            // A fresh directory per iteration: append cost must include
            // rotation, not amortize a warm segment forever.
            let dir = scratch.join(format!("wal-{label}-{round}"));
            round += 1;
            let (mut wal, _) = Wal::open(
                &dir,
                WalConfig {
                    fsync: policy,
                    segment_bytes: 1 << 20,
                },
            )
            .expect("open bench wal");
            for frame in batch.iter() {
                wal.append(frame).expect("append");
            }
            wal.sync().expect("final sync");
        });
        let aps = batch.len() as f64 / seconds;
        let mbps = aps * (frame_bytes as f64 / frames.len() as f64) / 1e6;
        if label == "interval:64" {
            interval_aps = Some(aps);
        }
        println!(
            "storebench: wal fsync {label:>11}: {seconds:.4} s/batch, \
             {aps:.0} appends/s ({mbps:.1} MB/s)"
        );
        rows.push(format!(
            "    {{\"sink\": \"wal\", \"fsync\": \"{label}\", \"appends\": {}, \
             \"seconds_per_batch\": {seconds:.6}, \"appends_per_sec\": {aps:.1}}}",
            batch.len()
        ));
    }

    // Result-log appends: a synthetic reconstruction payload of typical
    // size (pid + 4-hop path + 4 f64 hop times ≈ what record_batch
    // persists), keyed by a monotonically increasing time.
    let payload = vec![0u8; 54];
    let mut round = 0u32;
    let seconds = time_per_iter(|| {
        let dir = scratch.join(format!("res-{round}"));
        round += 1;
        let (mut store, _) = ResultStore::open(
            &dir,
            ResultStoreConfig {
                segment_bytes: 1 << 20,
                max_sealed_segments: 0,
            },
        )
        .expect("open bench result store");
        for (i, _) in batch.iter().enumerate() {
            store.append(i as f64, &payload).expect("append");
        }
        store.sync().expect("final sync");
    });
    let res_aps = batch.len() as f64 / seconds;
    println!("storebench: result log: {seconds:.4} s/batch, {res_aps:.0} appends/s");
    rows.push(format!(
        "    {{\"sink\": \"results\", \"fsync\": \"never\", \"appends\": {}, \
         \"seconds_per_batch\": {seconds:.6}, \"appends_per_sec\": {res_aps:.1}}}",
        batch.len()
    ));
    let _ = std::fs::remove_dir_all(&scratch);

    let interval = interval_aps.ok_or("missing interval row")?;
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                let committed = store_baseline_throughput(&json)
                    .ok_or_else(|| format!("{path}: no wal_interval_appends_per_sec"))?;
                let floor = committed * 0.8;
                if interval < floor {
                    return Err(format!(
                        "WAL append throughput (fsync interval) regressed >20%: \
                         {interval:.0} appends/s vs committed {committed:.0} \
                         (floor {floor:.0}) in {path}"
                    ));
                }
                println!(
                    "storebench: interval WAL {interval:.0} appends/s vs committed \
                     {committed:.0} — within the 20% regression budget"
                );
            }
            Err(e) => {
                // A missing baseline is the bootstrap case, not a failure.
                println!("storebench: no baseline at {path} ({e}); writing a fresh one");
            }
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"store_write_path\",\n  \"nodes\": {},\n  \"seed\": {},\n  \
         \"host_cpus\": {cpus},\n  \"packets\": {},\n  \
         \"wal_interval_appends_per_sec\": {interval:.1},\n  \"rows\": [\n{}\n  ]\n}}\n",
        args.nodes,
        args.seed,
        frames.len(),
        rows.join(",\n")
    );
    std::fs::write(&args.out, json).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("storebench: wrote {}", args.out);
    Ok(())
}

/// Pulls `"fanout_8_deliveries_per_sec": <float>` out of a previously
/// committed querybench file (flat machine-written JSON, substring
/// scan — same approach as [`baseline_throughput`]).
fn query_baseline_throughput(json: &str) -> Option<f64> {
    let key = "\"fanout_8_deliveries_per_sec\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Live-query path throughput and latency: (1) `SubHub` fan-out —
/// publishes per second and total deliveries per second at 1, 8, and
/// 64 subscribers; (2) `AGG` latency for a window served entirely by
/// retained sketches vs one old enough to force a result-log backfill
/// (agg retention is shrunk so the trace outlives it). The 8-subscriber
/// deliveries/s number is the regression gate.
fn query_bench(args: &Args) -> Result<(), String> {
    use domo_query::sub::{Event, SubFilter, SubHub, SubOptions};
    use domo_query::AggConfig;
    use domo_sink::service::{SinkConfig, SinkService};
    use domo_sink::StoreConfig;

    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    if trace.packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    // Fan-out works on synthetic `Event`s shaped like the trace (the
    // hub never inspects hop times beyond cloning them): per-hop times
    // interpolated between generation and sink arrival.
    let events: Vec<Event> = trace
        .packets
        .iter()
        .map(|p| {
            let hops = p.path.len().max(2);
            let t0 = p.gen_time.as_millis_f64();
            let t1 = p.sink_arrival.as_millis_f64();
            Event {
                origin: p.pid.origin.index() as u16,
                seq: p.pid.seq,
                path: p.path.iter().map(|n| n.index() as u16).collect(),
                hop_times_ms: (0..hops)
                    .map(|i| t0 + (t1 - t0) * i as f64 / (hops - 1) as f64)
                    .collect(),
            }
        })
        .collect();
    let target = 2048usize.max(events.len());
    let batch: Vec<&Event> = events.iter().cycle().take(target).collect();
    println!(
        "querybench: {} packets -> fan-out batches of {}",
        events.len(),
        batch.len()
    );

    let mut rows = Vec::new();
    let mut gate_dps = None;
    for subs in [1usize, 8, 64] {
        let seconds = time_per_iter(|| {
            let hub = SubHub::new();
            // Queues sized for the whole batch with shedding off: this
            // measures fan-out cost, not drop-oldest bookkeeping.
            let open: Vec<_> = (0..subs)
                .map(|_| {
                    hub.subscribe(
                        SubFilter::All,
                        SubOptions {
                            capacity: batch.len(),
                            max_lagged: 0,
                        },
                    )
                })
                .collect();
            for ev in &batch {
                hub.publish((*ev).clone());
            }
            drop(open);
        });
        let eps = batch.len() as f64 / seconds;
        let dps = eps * subs as f64;
        if subs == 8 {
            gate_dps = Some(dps);
        }
        println!(
            "querybench: fan-out {subs:>2} subscribers: {seconds:.4} s/batch, \
             {eps:.0} publishes/s, {dps:.0} deliveries/s"
        );
        rows.push(format!(
            "    {{\"op\": \"fanout\", \"subscribers\": {subs}, \"events\": {}, \
             \"seconds_per_batch\": {seconds:.6}, \"publishes_per_sec\": {eps:.1}, \
             \"deliveries_per_sec\": {dps:.1}}}",
            batch.len()
        ));
    }

    // AGG latency against a real durable sink: retention of 16 buckets
    // x 100 ms = 1.6 s, far shorter than the simulated run, so a
    // whole-run window must backfill from the result log while a
    // trailing window is served by the retained sketches alone.
    let scratch = std::env::temp_dir().join(format!("domo-querybench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let service = SinkService::start(SinkConfig {
        shards: 2,
        store: Some(StoreConfig::at(&scratch)),
        agg: AggConfig {
            granularity_ms: 100,
            retention_buckets: 16,
        },
        ..SinkConfig::default()
    });
    for p in &trace.packets {
        service.ingest(p.clone());
    }
    // `drain()` returns only what this drain flushed — records past a
    // window boundary were already emitted during ingest — so the
    // completeness check reads the cumulative counter. The sink dedups
    // retransmissions, so the expectation is distinct pids.
    let unique: std::collections::HashSet<_> = trace.packets.iter().map(|p| p.pid).collect();
    service.drain();
    let emitted = service.snapshot().stats.emitted;
    if emitted != unique.len() as u64 {
        service.shutdown();
        return Err(format!(
            "sink emitted {emitted} of {} distinct packets",
            unique.len()
        ));
    }
    // The busiest forwarder has the most samples, so its sketches and
    // backfill do the most work — the interesting case to time.
    let mut per_node = std::collections::HashMap::new();
    for p in &trace.packets {
        let n = p.path.len();
        for node in &p.path[..n.saturating_sub(1)] {
            *per_node.entry(node.index() as u16).or_insert(0u64) += 1;
        }
    }
    let (node, _) = per_node
        .into_iter()
        .max_by_key(|&(node, count)| (count, std::cmp::Reverse(node)))
        .ok_or("no forwarding node in the trace")?;
    let t_end = trace
        .packets
        .iter()
        .map(|p| p.sink_arrival.as_millis_f64())
        .fold(0.0f64, f64::max);
    let sketch_secs = time_per_iter(|| {
        service
            .agg_query(node, t_end - 800.0, t_end, 400)
            .expect("sketch-window AGG");
    });
    let backfill_secs = time_per_iter(|| {
        service
            .agg_query(node, 0.0, t_end, 10_000)
            .expect("backfill-window AGG");
    });
    service.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "querybench: AGG node {node}: sketch window {:.1} us, \
         backfill window {:.1} us",
        sketch_secs * 1e6,
        backfill_secs * 1e6
    );
    rows.push(format!(
        "    {{\"op\": \"agg_sketch\", \"node\": {node}, \"seconds_per_query\": {sketch_secs:.9}}}"
    ));
    rows.push(format!(
        "    {{\"op\": \"agg_backfill\", \"node\": {node}, \
         \"seconds_per_query\": {backfill_secs:.9}}}"
    ));

    let gate = gate_dps.ok_or("missing 8-subscriber row")?;
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                let committed = query_baseline_throughput(&json)
                    .ok_or_else(|| format!("{path}: no fanout_8_deliveries_per_sec"))?;
                let floor = committed * 0.8;
                if gate < floor {
                    return Err(format!(
                        "fan-out throughput (8 subscribers) regressed >20%: \
                         {gate:.0} deliveries/s vs committed {committed:.0} \
                         (floor {floor:.0}) in {path}"
                    ));
                }
                println!(
                    "querybench: 8-subscriber fan-out {gate:.0} deliveries/s vs committed \
                     {committed:.0} — within the 20% regression budget"
                );
            }
            Err(e) => {
                // A missing baseline is the bootstrap case, not a failure.
                println!("querybench: no baseline at {path} ({e}); writing a fresh one");
            }
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"query_path\",\n  \"nodes\": {},\n  \"seed\": {},\n  \
         \"host_cpus\": {cpus},\n  \"packets\": {},\n  \
         \"fanout_8_deliveries_per_sec\": {gate:.1},\n  \
         \"agg_sketch_seconds\": {sketch_secs:.9},\n  \
         \"agg_backfill_seconds\": {backfill_secs:.9},\n  \"rows\": [\n{}\n  ]\n}}\n",
        args.nodes,
        args.seed,
        events.len(),
        rows.join(",\n")
    );
    std::fs::write(&args.out, json).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("querybench: wrote {}", args.out);
    Ok(())
}

/// Measures what the observability layer costs the estimator: the same
/// workload with the global recorder enabled vs disabled
/// (`Recorder::set_enabled`), alternated per solve and judged on the
/// median of paired enabled/disabled ratios (see the inline comment for
/// why minima and per-mode medians are too noisy on a shared host).
/// Fails when the enabled runs come out more than `--max-delta` percent
/// slower, then writes `--out`.
fn obs_bench(args: &Args) -> Result<(), String> {
    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    if trace.packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    let view = TraceView::new(trace.packets.clone());
    let cfg = EstimatorConfig::default();
    let reference = try_estimate(&view, &cfg).map_err(|e| e.to_string())?;
    let windows = reference.stats.windows as f64;

    let recorder = domo_obs::Recorder::global();
    // Alternate the recorder per solve so machine noise (a previous
    // gate still draining, a scheduler hiccup) hits adjacent solves of
    // both modes equally, then judge the overhead on *paired ratios*:
    // each enabled solve against the mean of the disabled solves right
    // before and after it. Pairing cancels the slow load drift that
    // dominates a shared 1-CPU host — per-mode aggregates (min or
    // median over the whole run) still jitter by ±5% there, swamping a
    // sub-2% true effect — and the median over all pairs suppresses
    // what high-frequency noise remains. 61 solves ≈ 15 s on the
    // bench workload.
    let mut times = Vec::new();
    for k in 0..61u32 {
        recorder.set_enabled(k % 2 == 0);
        let one = Instant::now();
        let _ = try_estimate(&view, &cfg);
        times.push(one.elapsed().as_secs_f64());
    }
    recorder.set_enabled(true);
    // Even indices ran enabled, odd disabled; windows [d, e, d] pair
    // each interior enabled solve with its two disabled neighbours.
    let mut ratios: Vec<f64> = times
        .windows(3)
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, w)| w[1] / ((w[0] + w[2]) / 2.0))
        .collect();
    let mut enabled_times: Vec<f64> = times.iter().copied().step_by(2).collect();
    let mut disabled_times: Vec<f64> = times.iter().copied().skip(1).step_by(2).collect();
    let enabled_s = median(&mut enabled_times);
    let disabled_s = median(&mut disabled_times);
    let overhead_ratio = median(&mut ratios);

    let enabled_wps = windows / enabled_s;
    let disabled_wps = windows / disabled_s;
    let overhead_pct = (overhead_ratio - 1.0) * 100.0;
    println!(
        "obsbench: enabled {enabled_s:.3} s/solve ({enabled_wps:.1} windows/s), \
         disabled {disabled_s:.3} s/solve ({disabled_wps:.1} windows/s), \
         overhead {overhead_pct:+.2}%"
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"nodes\": {},\n  \"seed\": {},\n  \
         \"host_cpus\": {cpus},\n  \"windows\": {},\n  \
         \"enabled_seconds_per_solve\": {enabled_s:.6},\n  \
         \"disabled_seconds_per_solve\": {disabled_s:.6},\n  \
         \"enabled_windows_per_sec\": {enabled_wps:.1},\n  \
         \"disabled_windows_per_sec\": {disabled_wps:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2}\n}}\n",
        args.nodes, args.seed, reference.stats.windows
    );
    // `tracebench` shares this file: carry its section forward so a
    // metrics-overhead refresh doesn't silently drop the trace numbers.
    if let Ok(old) = std::fs::read_to_string(&args.out) {
        if let Some(trace) = extract_trace_object(&old) {
            json = with_trace_section(&json, trace);
        }
    }
    std::fs::write(&args.out, json).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("obsbench: wrote {}", args.out);

    if overhead_pct > args.max_delta {
        return Err(format!(
            "metrics overhead {overhead_pct:.2}% exceeds the {:.1}% budget",
            args.max_delta
        ));
    }
    Ok(())
}

/// Pulls the flat `"trace": {...}` object out of a committed
/// BENCH_obs.json, if present. The section is machine-written by
/// [`trace_bench`] and holds no nested braces, so the first `}` after
/// the key closes it.
fn extract_trace_object(json: &str) -> Option<&str> {
    let at = json.find("\"trace\":")?;
    let open = at + json[at..].find('{')?;
    let close = open + json[open..].find('}')? + 1;
    Some(&json[open..close])
}

/// Splices `"trace": <trace_obj>` into a flat machine-written bench
/// JSON object, replacing an existing section or inserting a new one
/// before the final `}`.
fn with_trace_section(json: &str, trace_obj: &str) -> String {
    let mut body = json.trim_end().to_string();
    if let Some(at) = body.find(",\n  \"trace\":") {
        if let Some(close) = body[at..].find('}') {
            body.replace_range(at..at + close + 1, "");
        }
    }
    let insert = body.rfind('}').unwrap_or(body.len());
    let head = body[..insert].trim_end();
    format!("{head},\n  \"trace\": {trace_obj}\n}}\n")
}

/// Pulls `"pipeline_pps_off": <float>` out of a previously committed
/// BENCH_obs.json trace section (flat machine-written JSON, substring
/// scan — same approach as [`baseline_throughput`]).
fn trace_baseline_throughput(json: &str) -> Option<f64> {
    let key = "\"pipeline_pps_off\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Stage-boundary hooks a packet crosses on the full server path:
/// reactor_read, batch_submit, wal_append, shard_enqueue,
/// shard_dequeue, flush, window_solve, result_append, publish,
/// subscriber_send. The disabled-overhead projection multiplies the
/// per-call cost by this count.
const TRACE_HOOKS_PER_PACKET: f64 = 10.0;

/// What per-packet journey tracing costs the pipeline (see the module
/// docs): a disabled-stamp microbench projected onto the measured
/// per-packet pipeline cost (gate <=1%), a paired-alternation pipeline
/// comparison with the sampler at 1/256 vs off (gate <=--max-delta),
/// and a fault-induced degrade that must land a flight-recorder dump
/// containing the triggering event. Splices a `"trace"` section into
/// `--out`, preserving the obsbench fields already there.
fn trace_bench(args: &Args) -> Result<(), String> {
    use domo_sink::service::{SinkConfig, SinkService};
    use domo_sink::StoreConfig;

    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    let total = trace.packets.len();
    if total == 0 {
        return Err("simulated trace delivered nothing".into());
    }

    // Part 1: the disabled fast path — one relaxed atomic load, the
    // hash short-circuited. Measured per call, then projected onto the
    // per-packet pipeline cost via the hook count.
    domo_obs::trace::set_sample_every(None);
    const CALLS: u32 = 1_000_000;
    let secs = time_per_iter(|| {
        for i in 0..CALLS {
            domo_obs::trace::stamp(
                std::hint::black_box((i % 64) as u16),
                std::hint::black_box(i),
                domo_obs::trace::Stage::Flush,
            );
        }
    });
    let stamp_off_ns = secs / f64::from(CALLS) * 1e9;
    println!("tracebench: disabled stamp costs {stamp_off_ns:.2} ns/call");

    // Part 2: the whole in-process pipeline (fresh single-shard sink,
    // ingest the trace, drain, shutdown) with the sampler at 1/256 vs
    // off, alternated per run and judged on paired ratios exactly like
    // obsbench — pairing cancels the slow load drift of a shared host.
    let run_pipeline = || {
        let service = SinkService::start(SinkConfig {
            shards: 1,
            ..SinkConfig::default()
        });
        for p in &trace.packets {
            service.ingest(p.clone());
        }
        service.drain();
        service.shutdown();
    };
    let mut times = Vec::new();
    for k in 0..31u32 {
        domo_obs::trace::set_sample_every(Some(if k % 2 == 0 { 256 } else { 0 }));
        let one = Instant::now();
        run_pipeline();
        times.push(one.elapsed().as_secs_f64());
    }
    domo_obs::trace::set_sample_every(None);
    let mut ratios: Vec<f64> = times
        .windows(3)
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, w)| w[1] / ((w[0] + w[2]) / 2.0))
        .collect();
    let mut sampled_times: Vec<f64> = times.iter().copied().step_by(2).collect();
    let mut off_times: Vec<f64> = times.iter().copied().skip(1).step_by(2).collect();
    // Overhead comes from paired ratios (load-drift-immune); the
    // absolute throughputs use the *fastest* run of each mode — like
    // `time_per_iter` everywhere else, the minimum is what a regression
    // gate can compare across differently loaded hosts.
    off_times.sort_by(f64::total_cmp);
    sampled_times.sort_by(f64::total_cmp);
    let off_s = off_times[0];
    let pps_off = total as f64 / off_s;
    let pps_sampled = total as f64 / sampled_times[0];
    let sampled_overhead_pct = (median(&mut ratios) - 1.0) * 100.0;
    // The disabled projection against the measured tracing-off cost.
    let packet_ns_off = off_s / total as f64 * 1e9;
    let disabled_overhead_pct = stamp_off_ns * TRACE_HOOKS_PER_PACKET / packet_ns_off * 100.0;
    println!(
        "tracebench: pipeline off {pps_off:.0} pkts/s, sampled 1/256 {pps_sampled:.0} pkts/s, \
         sampled overhead {sampled_overhead_pct:+.2}%, \
         disabled projection {disabled_overhead_pct:.4}% \
         ({TRACE_HOOKS_PER_PACKET:.0} hooks x {stamp_off_ns:.2} ns / {packet_ns_off:.0} ns/pkt)"
    );

    // Part 3: a degrade must leave a post-mortem behind. The same
    // seeded storm the chaos soak uses, but in process: WAL appends
    // start failing after 30 store ops, the health machine degrades,
    // and the transition dumps the flight ring into the data dir.
    let scratch = std::env::temp_dir().join(format!("domo-tracebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let faults = domo_store::FaultPlan::parse("eio=1,fsync=1,after=30,for=40,seed=5")
        .map_err(|e| format!("fault spec: {e}"))?;
    let service = SinkService::start(SinkConfig {
        shards: 1,
        store: Some(StoreConfig {
            faults: Some(faults),
            probe_every: 8,
            ..StoreConfig::at(&scratch)
        }),
        ..SinkConfig::default()
    });
    for p in &trace.packets {
        service.ingest(p.clone());
    }
    service.drain();
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while service.health_status().degraded_entries == 0 {
        // Checkpoint attempts burn faulted store ops, so the storm
        // window is guaranteed to trip even on a tiny trace.
        let _ = service.checkpoint_now();
        if Instant::now() > deadline {
            service.shutdown();
            return Err("the fault storm never degraded the sink".into());
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    service.shutdown();
    let mut dump_files = Vec::new();
    for entry in std::fs::read_dir(&scratch).map_err(|e| format!("read {scratch:?}: {e}"))? {
        let entry = entry.map_err(|e| format!("read {scratch:?}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("flight-") && name.ends_with(".jsonl") {
            dump_files.push(entry.path());
        }
    }
    if dump_files.is_empty() {
        return Err(format!(
            "degrade left no flight-*.jsonl dump in {scratch:?}"
        ));
    }
    let mut dump_records = 0usize;
    let mut saw_trigger = false;
    for path in &dump_files {
        let body = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        for line in body.lines() {
            if !(line.starts_with("{\"seq\":") && line.ends_with('}')) {
                return Err(format!("unparseable flight record in {path:?}: {line}"));
            }
            dump_records += 1;
            if line.contains("\"kind\":\"degraded\"") {
                saw_trigger = true;
            }
        }
    }
    if !saw_trigger {
        return Err(format!(
            "no \"degraded\" trigger event in the flight dumps: {dump_files:?}"
        ));
    }
    println!(
        "tracebench: degrade dumped {} flight file(s), {dump_records} records, trigger present",
        dump_files.len()
    );
    let _ = std::fs::remove_dir_all(&scratch);

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(json) => match trace_baseline_throughput(&json) {
                Some(committed) => {
                    let floor = committed * 0.8;
                    if pps_off < floor {
                        return Err(format!(
                            "tracing-off pipeline throughput regressed >20%: {pps_off:.0} pkts/s \
                             vs committed {committed:.0} (floor {floor:.0}) in {path}"
                        ));
                    }
                    println!(
                        "tracebench: pipeline {pps_off:.0} pkts/s vs committed \
                         {committed:.0} — within the 20% regression budget"
                    );
                }
                None => {
                    // A baseline without a trace section is the
                    // bootstrap case: this run writes the first one.
                    println!("tracebench: no trace section in {path} yet; writing a fresh one");
                }
            },
            Err(e) => {
                println!("tracebench: no baseline at {path} ({e}); writing a fresh one");
            }
        }
    }

    let trace_obj = format!(
        "{{\"hooks_per_packet\": {TRACE_HOOKS_PER_PACKET:.0}, \
         \"stamp_disabled_ns\": {stamp_off_ns:.2}, \
         \"pipeline_pps_off\": {pps_off:.1}, \
         \"pipeline_pps_sampled_256\": {pps_sampled:.1}, \
         \"disabled_overhead_pct\": {disabled_overhead_pct:.4}, \
         \"sampled_overhead_pct\": {sampled_overhead_pct:.2}, \
         \"flight_dump_files\": {}, \"flight_dump_records\": {dump_records}}}",
        dump_files.len()
    );
    let base = std::fs::read_to_string(&args.out).unwrap_or_else(|_| {
        format!(
            "{{\n  \"bench\": \"obs_overhead\",\n  \"nodes\": {},\n  \"seed\": {}\n}}\n",
            args.nodes, args.seed
        )
    });
    std::fs::write(&args.out, with_trace_section(&base, &trace_obj))
        .map_err(|e| format!("write {}: {e}", args.out))?;
    println!("tracebench: wrote the trace section of {}", args.out);

    if disabled_overhead_pct > 1.0 {
        return Err(format!(
            "disabled tracing projects to {disabled_overhead_pct:.4}% per-packet overhead, \
             over the 1% budget"
        ));
    }
    if sampled_overhead_pct > args.max_delta {
        return Err(format!(
            "1/256 sampling costs {sampled_overhead_pct:.2}%, over the {:.1}% budget",
            args.max_delta
        ));
    }
    Ok(())
}

/// Regenerates every committed `BENCH_*.json` in one go, gates off
/// (this is the refresh path after an intentional perf change), and
/// prints a one-line summary per file at the end.
fn bench_all(args: &Args) -> Result<(), String> {
    let fresh = |out: &str| Args {
        experiment: String::new(),
        nodes: 25,
        seed: 7,
        fast: 1,
        threads: 1,
        out: out.into(),
        baseline: None,
        metrics_json: None,
        max_delta: args.max_delta,
        quick: false,
        sink_bin: args.sink_bin.clone(),
    };
    println!("benchall: estimator");
    bench(&fresh("BENCH_estimator.json")).map_err(|e| format!("bench: {e}"))?;
    println!("benchall: obs overhead");
    obs_bench(&fresh("BENCH_obs.json")).map_err(|e| format!("obsbench: {e}"))?;
    println!("benchall: trace overhead");
    trace_bench(&fresh("BENCH_obs.json")).map_err(|e| format!("tracebench: {e}"))?;
    println!("benchall: store write path");
    store_bench(&fresh("BENCH_store.json")).map_err(|e| format!("storebench: {e}"))?;
    println!("benchall: query path");
    query_bench(&fresh("BENCH_query.json")).map_err(|e| format!("querybench: {e}"))?;
    println!("benchall: sink ingest (sibling binary)");
    let sink = sink_binary(args)?;
    let status = std::process::Command::new(&sink)
        .args(["bench", "--out", "BENCH_sink.json"])
        .status()
        .map_err(|e| format!("spawn {}: {e}", sink.display()))?;
    if !status.success() {
        return Err(format!("domo-sink bench failed: {status}"));
    }

    // The summary pulls one headline number back out of each file so a
    // refresh ends with a table instead of five pages of scroll.
    let pick = |path: &str, key: &str| -> String {
        let Ok(json) = std::fs::read_to_string(path) else {
            return "missing".into();
        };
        let probe = format!("\"{key}\":");
        json.find(&probe)
            .map(|at| {
                let rest = json[at + probe.len()..].trim_start();
                let end = rest
                    .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end].to_string()
            })
            .unwrap_or_else(|| "missing".into())
    };
    println!("benchall: summary");
    for (file, key, unit) in [
        (
            "BENCH_estimator.json",
            "single_thread_windows_per_sec",
            "windows/s",
        ),
        ("BENCH_obs.json", "overhead_pct", "% metrics overhead"),
        (
            "BENCH_obs.json",
            "sampled_overhead_pct",
            "% trace overhead at 1/256",
        ),
        (
            "BENCH_store.json",
            "wal_interval_appends_per_sec",
            "appends/s",
        ),
        (
            "BENCH_query.json",
            "fanout_8_deliveries_per_sec",
            "deliveries/s",
        ),
        ("BENCH_sink.json", "encode_pkts_per_sec", "encodes/s"),
    ] {
        println!("benchall:   {file:<22} {key} = {} {unit}", pick(file, key));
    }
    Ok(())
}

/// Kills the wrapped `serve` child on scope exit so no error path can
/// leak a background sink process.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Locates the `domo-sink` binary: `--sink-bin`, then `$DOMO_SINK_BIN`,
/// then a sibling of the running `domo-exp` executable (both land in
/// the same cargo target directory).
fn sink_binary(args: &Args) -> Result<std::path::PathBuf, String> {
    if let Some(p) = args.sink_bin.as_deref() {
        return Ok(p.into());
    }
    if let Ok(p) = std::env::var("DOMO_SINK_BIN") {
        return Ok(p.into());
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = exe.with_file_name("domo-sink");
    if sibling.exists() {
        return Ok(sibling);
    }
    Err(format!(
        "domo-sink binary not found at {}; build it (`cargo build -p domo-sink`) \
         or pass --sink-bin / set DOMO_SINK_BIN",
        sibling.display()
    ))
}

/// Spawns `domo-sink serve` on OS-assigned loopback ports and waits for
/// the addr file. Child stdio goes to null: the soak's verdict comes
/// from the query protocol, not from scraping the child's logs.
fn spawn_soak_serve(
    bin: &std::path::Path,
    data_dir: &str,
    addr_file: &std::path::Path,
    chaos_flags: &[&str],
) -> Result<(ChildGuard, String, String), String> {
    let _ = std::fs::remove_file(addr_file);
    let mut cmd = std::process::Command::new(bin);
    cmd.args([
        "serve",
        "--ingest-port",
        "0",
        "--query-port",
        "0",
        "--shards",
        "1",
        "--data-dir",
        data_dir,
        "--fsync",
        "interval:8",
        "--probe-every",
        "64",
        "--on-store-error",
        "degrade",
        "--idle-timeout",
        "120",
        "--addr-file",
        &addr_file.display().to_string(),
    ])
    .args(chaos_flags)
    .stdout(std::process::Stdio::null())
    .stderr(std::process::Stdio::null());
    let child = ChildGuard(cmd.spawn().map_err(|e| format!("spawn serve: {e}"))?);
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let mut lines = text.lines();
            if let (Some(ingest), Some(query)) = (lines.next(), lines.next()) {
                return Ok((child, ingest.to_string(), query.to_string()));
            }
        }
        if Instant::now() > deadline {
            return Err("serve child never published its addresses".into());
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// Reads `name value` out of a raw query reply, 0 when absent.
fn reply_stat(lines: &[String], name: &str) -> u64 {
    lines
        .iter()
        .filter_map(|l| l.strip_prefix(name)?.trim().parse().ok())
        .next()
        .unwrap_or(0)
}

/// The survival soak (see the module docs): a durable sink child under
/// an injected fault storm plus a shard-worker panic must keep exact
/// accounting, heal, and recover bit-identically after a SIGKILL.
fn chaos(args: &Args) -> Result<(), String> {
    use domo_sink::client::{query_request, replay_packets, ReplayOptions};
    use domo_sink::service::{SinkConfig, SinkService};

    let bin = sink_binary(args)?;
    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    let total = trace.packets.len();
    if total < 40 {
        return Err(format!("trace too small for a soak: {total} packets"));
    }
    // The fault storm arms after the first ~30 journal writes and, in
    // full mode, runs long enough to force several failed heal probes.
    // The shard panic lands at packet 10 — early enough that everything
    // the dying worker consumed is already journaled, so the watchdog
    // restart must lose nothing.
    let storm = if args.quick {
        "eio=1,fsync=1,after=30,for=40,seed=5"
    } else {
        "eio=1,fsync=1,torn=0.5,after=30,for=90,seed=5"
    };
    println!(
        "chaos: soak over {total} packets (storm {storm}, worker panic at 10, quick={})",
        args.quick
    );

    // The undisturbed truth: the same trace through an in-process,
    // volatile, single-shard service.
    let reference = SinkService::start(SinkConfig {
        shards: 1,
        ..SinkConfig::default()
    });
    for p in &trace.packets {
        reference.ingest(p.clone());
    }
    reference.drain();
    let mut expected: Vec<String> = trace
        .packets
        .iter()
        .map(|p| {
            let r = reference
                .reconstruction(p.pid)
                .ok_or_else(|| format!("reference lost {}", p.pid))?;
            let path: Vec<String> = r.path.iter().map(|n| n.index().to_string()).collect();
            let times: Vec<String> = r.hop_times_ms.iter().map(|t| format!("{t:.3}")).collect();
            Ok(format!(
                "packet {} path {} times {}",
                p.pid,
                path.join("-"),
                times.join(" ")
            ))
        })
        .collect::<Result<_, String>>()?;
    reference.shutdown();
    expected.sort();

    let scratch = std::env::temp_dir().join(format!("domo-chaos-{}", std::process::id()));
    let data_dir = scratch.display().to_string();
    let _ = std::fs::remove_dir_all(&scratch);
    let addr_file = std::env::temp_dir().join(format!("domo-chaos-addr-{}", std::process::id()));

    // Phase 1: the storm. Faults + panic armed; stream the full trace.
    let (mut child, ingest, query) = spawn_soak_serve(
        &bin,
        &data_dir,
        &addr_file,
        &["--store-faults", storm, "--chaos-panic", "0:10"],
    )?;
    replay_packets(
        &ingest as &str,
        &trace.packets,
        &ReplayOptions::default(), // no reconnect budget: the sink must not die
    )
    .map_err(|e| format!("storm replay: {e}"))?;

    // Wait for the socket to be fully consumed before draining —
    // every frame lands in exactly one of ingested/quarantined.
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let stats = query_request(&query as &str, "STATS").map_err(|e| format!("stats: {e}"))?;
        if reply_stat(&stats, "ingested ") + reply_stat(&stats, "quarantined ") >= total as u64 {
            break;
        }
        if Instant::now() > deadline {
            return Err("storm ingest stalled".into());
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    // Drain and heal until every packet answers a durable RANGE scan.
    // Emission is asynchronous behind the drain barrier, and while the
    // sink is degraded the emitted records sit in the in-memory backlog
    // rather than the result log — so each round also attempts the
    // healing checkpoint. Every failed attempt burns at least one
    // faulted I/O op, so the storm window is guaranteed to pass.
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    let mut got;
    loop {
        query_request(&query as &str, "DRAIN").map_err(|e| format!("drain: {e}"))?;
        query_request(&query as &str, "CHECKPOINT").map_err(|e| format!("checkpoint: {e}"))?;
        let mut lines =
            query_request(&query as &str, "RANGE -inf inf").map_err(|e| format!("range: {e}"))?;
        let count_line = lines.pop().unwrap_or_default();
        if count_line == format!("count {total}") {
            got = lines;
            break;
        }
        if lines.len() > total {
            return Err(format!(
                "double-emit under storm: {} records for {total} packets",
                lines.len()
            ));
        }
        if Instant::now() > deadline {
            return Err(format!(
                "storm drain stalled: {count_line} (want count {total})"
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // The storm is spent and the backlog is flushed: a checkpoint must
    // now succeed outright.
    let reply =
        query_request(&query as &str, "CHECKPOINT").map_err(|e| format!("checkpoint: {e}"))?;
    if !reply.first().is_some_and(|l| l.starts_with("OK lsn ")) {
        return Err(format!("post-heal checkpoint still failing: {reply:?}"));
    }

    // Gate 1: the child survived the whole storm on its own.
    if let Some(status) = child.0.try_wait().map_err(|e| format!("try_wait: {e}"))? {
        return Err(format!("sink exited during the storm: {status}"));
    }

    // Gate 2: exact accounting and a healed, storm-marked state.
    let stats = query_request(&query as &str, "STATS").map_err(|e| format!("stats: {e}"))?;
    let ingested = reply_stat(&stats, "ingested ");
    let emitted = reply_stat(&stats, "emitted ");
    let dropped =
        reply_stat(&stats, "backpressure_dropped ") + reply_stat(&stats, "watchdog_dropped ");
    if emitted + dropped != ingested {
        return Err(format!(
            "accounting broken: emitted {emitted} + dropped {dropped} != ingested {ingested}"
        ));
    }
    if ingested != total as u64 || dropped != 0 {
        return Err(format!(
            "lossless soak violated: ingested {ingested}/{total}, dropped {dropped}"
        ));
    }
    if !stats.iter().any(|l| l == "health healthy") {
        return Err(format!("sink did not heal: {stats:?}"));
    }
    for (counter, why) in [
        (
            "degraded_entries ",
            "the fault storm never degraded the sink",
        ),
        ("heals ", "the sink never re-armed durability"),
        (
            "watchdog_restarts ",
            "the worker panic never tripped the watchdog",
        ),
    ] {
        if reply_stat(&stats, counter) == 0 {
            return Err(format!("soak did not exercise its target: {why}"));
        }
    }
    let store = query_request(&query as &str, "STORE STATS").map_err(|e| format!("store: {e}"))?;
    if reply_stat(&store, "result_records ") != total as u64 {
        return Err(format!(
            "result log diverged: {} records for {total} packets (re-emissions must dedup)",
            reply_stat(&store, "result_records ")
        ));
    }
    if reply_stat(&store, "checkpoints_on_disk ") > 2 {
        return Err("checkpoint retention leak".into());
    }
    println!(
        "chaos: storm survived — degraded {}x, healed {}x, watchdog restarts {}, store errors {}",
        reply_stat(&stats, "degraded_entries "),
        reply_stat(&stats, "heals "),
        reply_stat(&stats, "watchdog_restarts "),
        reply_stat(&stats, "store_errors "),
    );

    // Gate 3a: post-heal state is already bit-identical while serving.
    got.sort();
    if got != expected {
        let diff = got
            .iter()
            .zip(&expected)
            .find(|(g, e)| g != e)
            .map(|(g, e)| format!("got `{g}` want `{e}`"))
            .unwrap_or_else(|| "length mismatch".into());
        return Err(format!("post-heal state diverges: {diff}"));
    }

    // Phase 2: SIGKILL, restart with a clean store, and require the
    // recovered state to match the same truth.
    drop(child);
    let (child, _ingest, query) = spawn_soak_serve(&bin, &data_dir, &addr_file, &[])?;
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    let mut got;
    loop {
        let mut lines =
            query_request(&query as &str, "RANGE -inf inf").map_err(|e| format!("range: {e}"))?;
        let count_line = lines.pop().unwrap_or_default();
        if count_line == format!("count {total}") {
            got = lines;
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "recovery lost records: {count_line} (want count {total})"
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
    }
    got.sort();
    if got != expected {
        return Err("recovered state diverges from the undisturbed run".into());
    }
    println!("chaos: recovered {total}/{total} packets bit-identically after SIGKILL");
    drop(child);
    let _ = std::fs::remove_dir_all(&scratch);
    let _ = std::fs::remove_file(&addr_file);
    println!("chaos: OK");
    Ok(())
}

/// Spawns a cluster-member `domo-sink serve` child: durable, one
/// shard, labelled `--cluster-role member`, with a high-water mark far
/// above the smoke workload so the estimator solves each member's
/// whole share in one sorted flush at DRAIN — that makes the
/// reconstruction a function of the *set* a member owns, independent
/// of the nondeterministic interleave failover replay introduces, so
/// the bit-identity gate below is exact (DESIGN.md §17.5).
fn spawn_member_serve(
    bin: &std::path::Path,
    data_dir: &str,
    addr_file: &std::path::Path,
) -> Result<(ChildGuard, String, String), String> {
    spawn_soak_serve(
        bin,
        data_dir,
        addr_file,
        &["--cluster-role", "member", "--high-water", "65536"],
    )
}

/// Re-namespaces a simulated packet into `tenant`'s id space: every
/// node id maps through [`domo_cluster::namespace_node`] (the shared
/// sink stays node 0), so tenants are disjoint end to end — pids,
/// dedup, storage, and queries never collide across namespaces.
fn namespaced(
    p: &domo_net::CollectedPacket,
    tenant: u16,
) -> Result<domo_net::CollectedPacket, String> {
    use domo_net::NodeId;
    let map = |n: NodeId| -> Result<NodeId, String> {
        domo_cluster::namespace_node(tenant, n.index() as u16)
            .map(NodeId::new)
            .ok_or_else(|| format!("node {n} does not fit tenant {tenant}"))
    };
    let mut q = p.clone();
    q.pid.origin = map(q.pid.origin)?;
    for n in &mut q.path {
        *n = map(*n)?;
    }
    Ok(q)
}

/// The tenant a reconstruction line belongs to, parsed from its
/// `packet n<origin>#<seq> …` pid token.
fn line_tenant(line: &str) -> Option<u16> {
    let pid = line.split_whitespace().nth(1)?;
    let origin: u16 = pid.strip_prefix('n')?.split('#').next()?.parse().ok()?;
    Some(domo_cluster::tenant_of(origin))
}

/// The multi-sink acceptance gate (check.sh gate 14): a 3-member ×
/// 2-tenant cluster of real `domo-sink serve` processes, fed through
/// the consistent-hash router, must survive a mid-replay SIGKILL of
/// its busiest member with (1) every record landing exactly once on a
/// survivor, (2) per-tenant reconstructions bit-identical to a
/// single-process reference that runs the same deterministic
/// placement, and (3) a scatter-gather AGG within the documented
/// sketch bound of an offline exact computation.
fn clustersmoke(args: &Args) -> Result<(), String> {
    use domo_cluster::{split_node, tenant_of, Ring};
    use domo_sink::client::query_request;
    use domo_sink::route::{cluster_agg, cluster_range, cluster_stats, RouteOptions, Router};
    use domo_sink::service::{SinkConfig, SinkService};

    let bin = sink_binary(args)?;
    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    if trace.packets.len() < 40 {
        return Err(format!(
            "trace too small for a cluster smoke: {} packets",
            trace.packets.len()
        ));
    }
    // Two tenants stream the same simulated trace, interleaved — same
    // workload, disjoint namespaces, so the per-tenant truths are
    // comparable and the ring spreads 2× the subtree keys.
    let mut workload = Vec::with_capacity(trace.packets.len() * 2);
    for p in &trace.packets {
        workload.push(namespaced(p, 1)?);
        workload.push(namespaced(p, 2)?);
    }
    let total = workload.len();
    let half = total / 2;
    println!(
        "clustersmoke: {} packets x 2 tenants = {total} records across 3 members",
        trace.packets.len()
    );

    // Three durable members.
    let scratch = std::env::temp_dir().join(format!("domo-clustersmoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut children: Vec<(ChildGuard, String, String)> = Vec::new();
    for i in 0..3usize {
        let data_dir = scratch.join(format!("member-{i}")).display().to_string();
        let addr_file = scratch.join(format!("addr-{i}"));
        std::fs::create_dir_all(&scratch).map_err(|e| format!("scratch: {e}"))?;
        children.push(spawn_member_serve(&bin, &data_dir, &addr_file)?);
    }
    let members: Vec<String> = children.iter().map(|(_, i, _)| i.clone()).collect();

    // The victim: whoever owns the most of the second half, so the
    // kill is guaranteed to hit in-flight traffic (a small tree has
    // few subtree keys; killing an idle member would test nothing).
    let ring = Ring::new(members.clone());
    let owner_of = |p: &domo_net::CollectedPacket| -> Result<String, String> {
        let root = p
            .subtree_root()
            .ok_or_else(|| format!("{} has no subtree root", p.pid))?;
        let (t, r) = split_node(root.index() as u16);
        ring.owner(t, r)
            .map(String::from)
            .ok_or_else(|| "empty ring".to_string())
    };
    let mut second_half_share: std::collections::BTreeMap<String, u64> = Default::default();
    for p in &workload[half..] {
        *second_half_share.entry(owner_of(p)?).or_insert(0) += 1;
    }
    let victim = second_half_share
        .iter()
        .max_by_key(|&(_, n)| n)
        .map(|(m, _)| m.clone())
        .ok_or("no second-half owners")?;
    if second_half_share[&victim] < 2 {
        return Err("victim owns too little of the second half to force failover".into());
    }

    // Route the first half, SIGKILL the victim mid-replay, route the
    // rest. The router detects the death on a failed write, reroutes
    // the victim's keys, and replays its spool to the new owners.
    let mut router = Router::new(
        members.clone(),
        RouteOptions {
            max_reconnects: 2,
            backoff_start_ms: 5,
            backoff_cap_ms: 50,
            ..RouteOptions::default()
        },
    )
    .map_err(|e| format!("router: {e}"))?;
    for p in &workload[..half] {
        router.forward(p).map_err(|e| format!("forward: {e}"))?;
    }
    let victim_idx = members
        .iter()
        .position(|m| *m == victim)
        .ok_or("victim not a member")?;
    {
        let (child, ingest, _) = &mut children[victim_idx];
        child
            .0
            .kill()
            .map_err(|e| format!("kill victim {ingest}: {e}"))?;
        let _ = child.0.wait();
    }
    println!("clustersmoke: SIGKILLed {victim} after {half}/{total} records");
    std::thread::sleep(std::time::Duration::from_millis(50));
    for p in &workload[half..] {
        router
            .forward(p)
            .map_err(|e| format!("forward after kill: {e}"))?;
    }
    let report = router.finish().map_err(|e| format!("finish: {e}"))?;
    if report.failovers != 1 || report.spool_dropped != 0 || report.forwarded != total as u64 {
        return Err(format!(
            "failover accounting off: failovers {} spool_dropped {} forwarded {}/{total}",
            report.failovers, report.spool_dropped, report.forwarded
        ));
    }
    println!(
        "clustersmoke: failover rerouted {} records ({} reconnect attempts)",
        report.rerouted, report.reconnects
    );

    // Survivors and their deterministic final shares: the ring's owner,
    // or — for the victim's keys — the owner after removal.
    let survivors: Vec<usize> = (0..members.len()).filter(|&i| i != victim_idx).collect();
    let healed = {
        let mut r = Ring::new(members.clone());
        r.remove_member(&victim);
        r
    };
    let final_owner = |p: &domo_net::CollectedPacket| -> Result<String, String> {
        let owner = owner_of(p)?;
        if owner != victim {
            return Ok(owner);
        }
        let root = p
            .subtree_root()
            .ok_or_else(|| format!("{} has no subtree root", p.pid))?;
        let (t, r) = split_node(root.index() as u16);
        healed
            .owner(t, r)
            .map(String::from)
            .ok_or_else(|| "healed ring empty".to_string())
    };

    // Every record must land exactly once across the survivors.
    let queries: Vec<String> = survivors.iter().map(|&i| children[i].2.clone()).collect();
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let mut ingested = 0;
        let mut quarantined = 0;
        for q in &queries {
            let stats = query_request(q.as_str(), "STATS").map_err(|e| format!("stats: {e}"))?;
            ingested += reply_stat(&stats, "ingested ");
            quarantined += reply_stat(&stats, "quarantined ");
        }
        if quarantined != 0 {
            return Err(format!(
                "exactly-once violated: {quarantined} duplicate records quarantined"
            ));
        }
        if ingested == total as u64 {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!("cluster ingest stalled at {ingested}/{total}"));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The single-process reference: the same placement, run as one
    // in-process service per surviving member's share. (A lone service
    // over the whole workload is NOT the right truth: estimator
    // windows are share-local, which is exactly why the ring keys on
    // the subtree root — co-constrained packets stay together.)
    let mut expected: Vec<String> = Vec::with_capacity(total);
    for &i in &survivors {
        let share: Vec<domo_net::CollectedPacket> = workload
            .iter()
            .filter(|p| final_owner(p).as_deref() == Ok(members[i].as_str()))
            .cloned()
            .collect();
        let svc = SinkService::start(SinkConfig {
            shards: 1,
            high_water: Some(65_536),
            ..SinkConfig::default()
        });
        for p in &share {
            svc.ingest(p.clone());
        }
        svc.drain();
        for p in &share {
            let r = svc
                .reconstruction(p.pid)
                .ok_or_else(|| format!("reference lost {}", p.pid))?;
            let path: Vec<String> = r.path.iter().map(|n| n.index().to_string()).collect();
            let times: Vec<String> = r.hop_times_ms.iter().map(|t| format!("{t:.3}")).collect();
            expected.push(format!(
                "packet {} path {} times {}",
                p.pid,
                path.join("-"),
                times.join(" ")
            ));
        }
        svc.shutdown();
    }
    expected.sort();
    if expected.len() != total {
        return Err(format!(
            "reference emitted {}/{total} reconstructions",
            expected.len()
        ));
    }

    // Drain and scatter-gather until the merged RANGE holds everything,
    // then require bit-identity per tenant.
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    let got = loop {
        for q in &queries {
            query_request(q.as_str(), "DRAIN").map_err(|e| format!("drain: {e}"))?;
        }
        let (lines, gather) = cluster_range(&queries, f64::NEG_INFINITY, f64::INFINITY)
            .map_err(|e| format!("cluster range: {e}"))?;
        if !gather.missed.is_empty() {
            return Err(format!("survivor unreachable: {:?}", gather.missed));
        }
        if lines.len() == total {
            break lines;
        }
        if lines.len() > total {
            return Err(format!(
                "double-emit: {} records for {total} packets",
                lines.len()
            ));
        }
        if Instant::now() > deadline {
            return Err(format!(
                "cluster recovery stalled at {}/{total} records",
                lines.len()
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
    };
    for tenant in [1u16, 2] {
        let want: Vec<&String> = expected
            .iter()
            .filter(|l| line_tenant(l) == Some(tenant))
            .collect();
        let have: Vec<&String> = got
            .iter()
            .filter(|l| line_tenant(l) == Some(tenant))
            .collect();
        if want != have {
            let diff = have
                .iter()
                .zip(&want)
                .find(|(g, e)| g != e)
                .map(|(g, e)| format!("got `{g}` want `{e}`"))
                .unwrap_or_else(|| format!("{} vs {} lines", have.len(), want.len()));
            return Err(format!(
                "tenant {tenant} diverges from the reference: {diff}"
            ));
        }
        println!(
            "clustersmoke: tenant {tenant} recovered {} reconstructions bit-identically",
            want.len()
        );
    }

    // Cluster-wide counters and tenant namespaces.
    let (stats, gather) = cluster_stats(&queries).map_err(|e| format!("cluster stats: {e}"))?;
    if gather.reached.len() != queries.len() {
        return Err(format!("cluster stats missed members: {:?}", gather.missed));
    }
    let summed = |name: &str| stats.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v);
    if summed("ingested") != total as u64 || summed("emitted") != total as u64 {
        return Err(format!(
            "cluster totals off: ingested {} emitted {} want {total}",
            summed("ingested"),
            summed("emitted")
        ));
    }
    let mut per_tenant: std::collections::BTreeMap<u16, u64> = Default::default();
    for q in &queries {
        let stats = query_request(q.as_str(), "STATS").map_err(|e| format!("stats: {e}"))?;
        if !stats.iter().any(|l| l == "cluster_role member") {
            return Err(format!("member at {q} does not report its cluster role"));
        }
        for line in query_request(q.as_str(), "TENANTS").map_err(|e| format!("tenants: {e}"))? {
            let fields: Vec<&str> = line.split_whitespace().collect();
            if let ["tenant", id, "accepted", n] = fields[..] {
                let id: u16 = id.parse().map_err(|e| format!("tenant id: {e}"))?;
                let n: u64 = n.parse().map_err(|e| format!("tenant count: {e}"))?;
                *per_tenant.entry(id).or_insert(0) += n;
            }
        }
    }
    let share = trace.packets.len() as u64;
    if per_tenant.get(&1) != Some(&share) || per_tenant.get(&2) != Some(&share) {
        return Err(format!(
            "tenant namespaces drifted: {per_tenant:?}, want {share} each"
        ));
    }
    println!("clustersmoke: tenant namespaces intact ({share} records each)");

    // Scatter-gather AGG for the busiest tenant-1 forwarder vs the
    // offline exact sojourns, within the documented sketch bound.
    let mut sojourns_by_node: std::collections::BTreeMap<u16, Vec<f64>> = Default::default();
    for line in &expected {
        let fields: Vec<&str> = line.split_whitespace().collect();
        let (Some(pp), Some(tp)) = (
            fields.iter().position(|&t| t == "path"),
            fields.iter().position(|&t| t == "times"),
        ) else {
            continue;
        };
        let path: Vec<u16> = fields[pp + 1]
            .split('-')
            .filter_map(|t| t.parse().ok())
            .collect();
        let times: Vec<f64> = fields[tp + 1..]
            .iter()
            .filter_map(|t| t.parse().ok())
            .collect();
        for (i, w) in times.windows(2).enumerate() {
            if let Some(&n) = path.get(i) {
                if tenant_of(n) == 1 {
                    sojourns_by_node
                        .entry(n)
                        .or_default()
                        .push((w[1] - w[0]).max(0.0));
                }
            }
        }
    }
    let (agg_node, mut exact) = sojourns_by_node
        .into_iter()
        .max_by_key(|(_, v)| v.len())
        .ok_or("no tenant-1 sojourn samples")?;
    exact.sort_by(f64::total_cmp);
    let (buckets, gather) = cluster_agg(&queries, agg_node, 0.0, 1e9, 1_000_000_000)
        .map_err(|e| format!("cluster agg: {e}"))?;
    if gather.reached.len() != queries.len() {
        return Err(format!("cluster agg missed members: {:?}", gather.missed));
    }
    let bucket = buckets
        .first()
        .ok_or_else(|| format!("cluster AGG returned no bucket for node {agg_node}"))?;
    if bucket.count != exact.len() as u64 {
        return Err(format!(
            "cluster AGG count {} != offline {}",
            bucket.count,
            exact.len()
        ));
    }
    // DelaySketch::relative_error_bound is ≈5.93% (documented < 6.2%);
    // the offline values carry %.3f wire rounding, hence the slack.
    let bound = 0.062;
    let rank = |q: f64| -> f64 {
        let r = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        exact[r - 1]
    };
    for (name, est, q) in [
        ("p50", bucket.p50, 0.50),
        ("p95", bucket.p95, 0.95),
        ("p99", bucket.p99, 0.99),
    ] {
        let truth = rank(q);
        if (est - truth).abs() > bound * truth.abs() + 1e-2 {
            return Err(format!(
                "cluster AGG {name} {est} vs exact {truth} exceeds the {bound} bound"
            ));
        }
    }
    println!(
        "clustersmoke: cluster AGG over {} samples of node {agg_node} within the {:.1}% bound",
        bucket.count,
        bound * 100.0
    );

    drop(children);
    let _ = std::fs::remove_dir_all(&scratch);
    println!("clustersmoke: OK");
    Ok(())
}

/// Pulls `(members, pkts_per_sec)` rows out of a previously written
/// BENCH_cluster.json (flat machine-written JSON, substring scan —
/// same approach as [`baseline_throughput`]).
fn cluster_baseline_rows(text: &str) -> Vec<(usize, f64)> {
    let number_after = |hay: &str, key: &str| -> Option<(usize, f64)> {
        let at = hay.find(key)?;
        let rest = hay[at + key.len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok().map(|v| (at, v))
    };
    let mut rows = Vec::new();
    let mut cursor = 0;
    while let Some((at, members)) = number_after(&text[cursor..], "\"members\":") {
        let from = cursor + at;
        if let Some((_, v)) = number_after(&text[from..], "\"pkts_per_sec\":") {
            rows.push((members as usize, v));
        }
        cursor = from + 1;
    }
    rows
}

/// Replicates a trace time-shifted and seq-offset until it holds at
/// least `target` packets (pids stay unique, timestamps stay monotone
/// — the same steady-state trick `domo-sink bench` uses).
fn replicate_workload(
    base: &[domo_net::CollectedPacket],
    target: usize,
) -> Vec<domo_net::CollectedPacket> {
    use domo_util::time::{SimDuration, SimTime};
    let span = base
        .iter()
        .map(|p| p.sink_arrival)
        .max()
        .unwrap_or(SimTime::ZERO)
        .saturating_sub(SimTime::ZERO)
        + SimDuration::from_millis(1);
    let seq_stride = base.iter().map(|p| p.pid.seq).max().unwrap_or(0) + 1;
    let rounds = target.div_ceil(base.len().max(1));
    let mut out = Vec::with_capacity(rounds * base.len());
    for round in 0..rounds {
        let shift = span * round as u64;
        for p in base {
            let mut q = p.clone();
            q.pid.seq += seq_stride * round as u32;
            q.gen_time += shift;
            q.sink_arrival += shift;
            out.push(q);
        }
    }
    out
}

/// Router fan-out throughput at 1, 2, and 4 members (in-process
/// sinks), gated on `--baseline` (>20% regression on any member count
/// fails), then written to `--out` (default BENCH_cluster.json).
fn cluster_bench(args: &Args) -> Result<(), String> {
    use domo_sink::route::{route_packets, RouteOptions};
    use domo_sink::server::SinkServer;
    use domo_sink::service::SinkConfig;

    const TARGET: usize = 16_384;
    const REPS: usize = 3;
    let trace = run_simulation(&NetworkConfig::small(args.nodes, args.seed));
    if trace.packets.is_empty() {
        return Err("simulated trace delivered nothing".into());
    }
    // Spread the base trace over four tenant namespaces before
    // replicating: one small tree has only a handful of subtree roots,
    // and with so few ring keys a 2- or 4-member ring can legitimately
    // leave a member idle — which would make the "fan-out at N
    // members" number a lie. Four tenants × the tree's roots gives the
    // ring enough keys to load every member.
    let mut base = Vec::with_capacity(trace.packets.len() * 4);
    for tenant in 0..4u16 {
        for p in &trace.packets {
            base.push(namespaced(p, tenant)?);
        }
    }
    let workload = replicate_workload(&base, TARGET);
    let total = workload.len();
    println!("clusterbench: fanning {total} records (4 tenants) out over 1/2/4 members");

    // Correctness leg (untimed): route the whole workload into a real
    // 4-member cluster of in-process sinks and require every record to
    // clear the wire, the decode path, and dedup with nothing lost.
    // The estimator is tuned for speed over accuracy here — tiny
    // windows, no FIFO rows, a one-iteration solver budget — because
    // this leg gates losslessness, not reconstruction quality.
    {
        let servers: Vec<SinkServer> = (0..4)
            .map(|_| {
                SinkServer::bind(
                    "127.0.0.1:0",
                    "127.0.0.1:0",
                    SinkConfig {
                        shards: 1,
                        cluster_role: "member".into(),
                        high_water: Some(64),
                        estimator: {
                            let mut est = EstimatorConfig {
                                fifo_mode: domo_core::estimator::FifoMode::Off,
                                ..EstimatorConfig::default()
                            };
                            est.solver.max_iterations = 1;
                            est.solver.polish = false;
                            est
                        },
                        ..SinkConfig::default()
                    },
                )
                .map_err(|e| format!("bind member: {e}"))
            })
            .collect::<Result<_, String>>()?;
        let addrs: Vec<String> = servers
            .iter()
            .map(|s| s.ingest_addr().to_string())
            .collect();
        let report = route_packets(addrs, &workload, RouteOptions::default())
            .map_err(|e| format!("route: {e}"))?;
        if report.forwarded != total as u64 || report.failovers != 0 {
            return Err(format!(
                "bench route drifted: forwarded {}/{total}, failovers {}",
                report.forwarded, report.failovers
            ));
        }
        let deadline = Instant::now() + std::time::Duration::from_secs(120);
        loop {
            let got: u64 = servers.iter().map(|s| s.service().stats().ingested).sum();
            if got == total as u64 {
                break;
            }
            if Instant::now() > deadline {
                return Err(format!("bench ingest stalled at {got}/{total}"));
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        for s in servers {
            s.shutdown();
        }
        println!("clusterbench: loss validation OK ({total} records, 4 live members)");
    }

    // Throughput leg (timed): the same fan-out into drain listeners
    // that accept one connection each and discard bytes. That pins the
    // measurement on the router + wire encode path — what this bench
    // gates — instead of on solver scheduling noise, which made the
    // live-sink numbers swing 2x between runs.
    let drain_member = || -> Result<_, String> {
        let listener =
            std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind drain: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("drain addr: {e}"))?
            .to_string();
        let handle = std::thread::spawn(move || -> std::io::Result<u64> {
            let (mut stream, _) = listener.accept()?;
            std::io::copy(&mut stream, &mut std::io::sink())
        });
        Ok((addr, handle))
    };
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for members in [1usize, 2, 4] {
        let mut best = 0f64;
        for _rep in 0..REPS {
            let mut addrs = Vec::with_capacity(members);
            let mut drains = Vec::with_capacity(members);
            for _ in 0..members {
                let (addr, handle) = drain_member()?;
                addrs.push(addr);
                drains.push(handle);
            }
            // The timed window covers the full drain: finish() closes
            // the connections at a frame boundary, and the join only
            // returns once every byte left the kernel buffers.
            let start = Instant::now();
            let report = route_packets(addrs.clone(), &workload, RouteOptions::default())
                .map_err(|e| format!("route: {e}"))?;
            // Wake any drain whose member drew no keys (the router
            // connects lazily): a throwaway connection that closes
            // immediately unblocks its accept with zero bytes. Members
            // already connected just leave it in the backlog.
            for addr in &addrs {
                drop(std::net::TcpStream::connect(addr.as_str()));
            }
            let mut drained = 0u64;
            for handle in drains {
                drained += handle
                    .join()
                    .map_err(|_| "drain thread panicked".to_string())?
                    .map_err(|e| format!("drain read: {e}"))?;
            }
            let seconds = start.elapsed().as_secs_f64();
            if report.forwarded != total as u64 || report.failovers != 0 {
                return Err(format!(
                    "bench route drifted: forwarded {}/{total}, failovers {}",
                    report.forwarded, report.failovers
                ));
            }
            if drained != report.bytes {
                return Err(format!(
                    "wire loss: drained {drained} of {} routed bytes",
                    report.bytes
                ));
            }
            best = best.max(total as f64 / seconds);
        }
        println!("clusterbench: {members} member(s): {best:.0} pkts/s fan-out");
        measured.push((members, best));
        rows.push(format!(
            "    {{\"members\": {members}, \"pkts_per_sec\": {best:.1}}}"
        ));
    }

    if let Some(path) = args.baseline.as_deref() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("baseline {path}: {e}"))?;
        let old = cluster_baseline_rows(&text);
        if old.is_empty() {
            return Err(format!("baseline {path} has no pkts_per_sec rows"));
        }
        for (members, old_pps) in old {
            let Some(&(_, new_pps)) = measured.iter().find(|(m, _)| *m == members) else {
                continue;
            };
            if new_pps < 0.8 * old_pps {
                return Err(format!(
                    "regression at {members} member(s): {new_pps:.0} pkts/s < 80% of \
                     baseline {old_pps:.0}"
                ));
            }
            println!(
                "clusterbench: {members} member(s) vs baseline: {new_pps:.0} / {old_pps:.0} pkts/s"
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"cluster_fanout\",\n  \"nodes\": {},\n  \"seed\": {},\n  \
         \"packets\": {total},\n  \"rows\": [\n{}\n  ]\n}}\n",
        args.nodes,
        args.seed,
        rows.join(",\n")
    );
    std::fs::write(&args.out, json).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("clusterbench: wrote {}", args.out);
    Ok(())
}

fn run(experiment: &str, args: &Args) {
    match experiment {
        "fig1" => println!("{}", figures::delay_map(base_scenario(args))),
        "fig6" => {
            let eval = figures::evaluate(base_scenario(args));
            println!("{}", eval.render_accuracy());
            println!("{}", eval.render_bounds());
            println!("{}", eval.render_displacement());
            println!(
                "(trace: {} unknowns; estimator {:.1}s, bounds {:.1}s)\n",
                eval.num_unknowns, eval.estimate_seconds, eval.bounds_seconds
            );
        }
        "fig7" => {
            let points = figures::loss_sweep(base_scenario(args), &[0.1, 0.2, 0.3]);
            println!("{}", figures::render_loss_sweep(&points));
        }
        "fig8" => {
            let scales: Vec<usize> = [100usize, 225, 400]
                .into_iter()
                .filter(|&n| n <= args.nodes.max(400))
                .collect();
            let points: Vec<(usize, figures::Evaluation)> = scales
                .iter()
                .map(|&n| {
                    (
                        n,
                        figures::evaluate(Scenario::paper(n, args.seed).scaled_down(args.fast)),
                    )
                })
                .collect();
            println!("{}", figures::render_scale_sweep(&points));
        }
        "fig9" => {
            let points = figures::window_ratio_sweep(
                base_scenario(args),
                &[0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            );
            println!("{}", figures::render_window_ratio_sweep(&points));
        }
        "fig10" => {
            let points = figures::cut_size_sweep(base_scenario(args), &[25, 50, 100, 200, 400]);
            println!("{}", figures::render_cut_size_sweep(&points));
        }
        "table1" => println!("{}", figures::table1(base_scenario(args))),
        "ablation" => println!("{}", figures::ablation_report(base_scenario(args))),
        "workload" => {
            let scenario = base_scenario(args);
            let run = domo_experiments::ScenarioRun::execute(scenario);
            if let Some(profile) = domo_net::TraceProfile::from_trace(&run.trace) {
                println!("{}", profile.render());
            }
            let diag = domo_core::diagnose(run.domo.view(), &run.scenario.estimator.constraints);
            println!("{}", diag.render());
        }
        "robust" => {
            let points = figures::fault_sweep(base_scenario(args), &[0.0, 0.05, 0.1, 0.2]);
            println!("{}", figures::render_fault_sweep(&points));
        }
        "online" => {
            let cmp = figures::online_comparison(base_scenario(args), &[1, 2, 4]);
            println!("{}", figures::render_online(&cmp));
        }
        "bench" => {
            if let Err(msg) = bench(args) {
                domo_obs::error!(target: "domo_exp", "bench failed", error = msg);
                std::process::exit(1);
            }
        }
        "obsbench" => {
            if let Err(msg) = obs_bench(args) {
                domo_obs::error!(target: "domo_exp", "obsbench failed", error = msg);
                std::process::exit(1);
            }
        }
        "storebench" => {
            if let Err(msg) = store_bench(args) {
                domo_obs::error!(target: "domo_exp", "storebench failed", error = msg);
                std::process::exit(1);
            }
        }
        "querybench" => {
            if let Err(msg) = query_bench(args) {
                domo_obs::error!(target: "domo_exp", "querybench failed", error = msg);
                std::process::exit(1);
            }
        }
        "tracebench" => {
            if let Err(msg) = trace_bench(args) {
                domo_obs::error!(target: "domo_exp", "tracebench failed", error = msg);
                std::process::exit(1);
            }
        }
        "benchall" => {
            if let Err(msg) = bench_all(args) {
                domo_obs::error!(target: "domo_exp", "benchall failed", error = msg);
                std::process::exit(1);
            }
        }
        "chaos" => {
            if let Err(msg) = chaos(args) {
                domo_obs::error!(target: "domo_exp", "chaos failed", error = msg);
                std::process::exit(1);
            }
        }
        "clustersmoke" => {
            if let Err(msg) = clustersmoke(args) {
                domo_obs::error!(target: "domo_exp", "clustersmoke failed", error = msg);
                std::process::exit(1);
            }
        }
        "clusterbench" => {
            if let Err(msg) = cluster_bench(args) {
                domo_obs::error!(target: "domo_exp", "clusterbench failed", error = msg);
                std::process::exit(1);
            }
        }
        "all" => {
            for exp in [
                "workload", "table1", "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation",
                "robust", "online",
            ] {
                run(exp, args);
            }
        }
        other => {
            domo_obs::error!(
                target: "domo_exp",
                "unknown experiment — see the module docs",
                experiment = other,
            );
            std::process::exit(2);
        }
    }
}

/// Dumps every metric the process recorded as JSON Lines (`-` for
/// stdout).
fn write_metrics_dump(path: &str) {
    let body = domo_obs::Recorder::global().render_jsonl();
    if path == "-" {
        print!("{body}");
        return;
    }
    match std::fs::write(path, body) {
        Ok(()) => {
            domo_obs::info!(target: "domo_exp", "wrote metrics dump", path = path);
        }
        Err(e) => {
            domo_obs::error!(
                target: "domo_exp",
                "failed to write metrics dump",
                path = path,
                error = e.to_string(),
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    match parse_args() {
        Ok(args) => {
            run(&args.experiment.clone(), &args);
            if let Some(path) = &args.metrics_json {
                write_metrics_dump(path);
            }
        }
        Err(msg) => {
            let usage = "usage: domo-exp \
                 <fig1|fig6|fig7|fig8|fig9|fig10|table1|ablation|workload|robust|online|bench|\
                 obsbench|storebench|querybench|tracebench|benchall|chaos|clustersmoke|\
                 clusterbench|all> \
                 [--nodes N] [--seed S] [--fast K] [--threads T] \
                 [--out PATH] [--baseline PATH] [--metrics-json PATH] [--max-delta PCT] \
                 [--quick] [--sink-bin PATH]";
            domo_obs::error!(target: "domo_exp", "bad invocation", error = msg, usage = usage);
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{
        baseline_throughput, cluster_baseline_rows, extract_trace_object,
        store_baseline_throughput, trace_baseline_throughput, with_trace_section,
    };

    #[test]
    fn cluster_baseline_parser_reads_every_row() {
        let json = "{\n  \"bench\": \"cluster_fanout\",\n  \"rows\": [\n    \
                    {\"members\": 1, \"pkts_per_sec\": 1000.5},\n    \
                    {\"members\": 2, \"pkts_per_sec\": 1800.0},\n    \
                    {\"members\": 4, \"pkts_per_sec\": 2500.25}\n  ]\n}";
        assert_eq!(
            cluster_baseline_rows(json),
            vec![(1, 1000.5), (2, 1800.0), (4, 2500.25)]
        );
        assert!(cluster_baseline_rows("{}").is_empty());
        assert!(cluster_baseline_rows("{\"members\": 3}").is_empty());
    }

    #[test]
    fn baseline_parser_reads_the_committed_number() {
        let json = "{\n  \"bench\": \"estimator_windows\",\n  \
                    \"single_thread_windows_per_sec\": 123.4,\n  \"rows\": []\n}";
        assert_eq!(baseline_throughput(json), Some(123.4));
        assert_eq!(baseline_throughput("{}"), None);
        assert_eq!(
            baseline_throughput("{\"single_thread_windows_per_sec\": bad}"),
            None
        );
    }

    #[test]
    fn store_baseline_parser_reads_the_committed_number() {
        let json = "{\n  \"bench\": \"store_write_path\",\n  \
                    \"wal_interval_appends_per_sec\": 98765.4,\n  \"rows\": []\n}";
        assert_eq!(store_baseline_throughput(json), Some(98765.4));
        assert_eq!(store_baseline_throughput("{}"), None);
    }

    #[test]
    fn trace_section_splices_and_round_trips() {
        let obs = "{\n  \"bench\": \"obs_overhead\",\n  \"overhead_pct\": -0.51\n}\n";
        let spliced = with_trace_section(obs, "{\"pipeline_pps_off\": 1234.5}");
        assert!(spliced.contains("\"overhead_pct\": -0.51"));
        assert_eq!(
            extract_trace_object(&spliced),
            Some("{\"pipeline_pps_off\": 1234.5}")
        );
        assert_eq!(trace_baseline_throughput(&spliced), Some(1234.5));
        // Re-splicing replaces, never duplicates.
        let again = with_trace_section(&spliced, "{\"pipeline_pps_off\": 99.0}");
        assert_eq!(again.matches("\"trace\":").count(), 1);
        assert_eq!(trace_baseline_throughput(&again), Some(99.0));
        assert!(again.contains("\"overhead_pct\": -0.51"));
        // No section in a plain obsbench file.
        assert_eq!(extract_trace_object(obs), None);
        assert_eq!(trace_baseline_throughput(obs), None);
    }
}
