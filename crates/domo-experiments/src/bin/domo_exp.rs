//! `domo-exp` — regenerate the Domo paper's tables and figures.
//!
//! ```text
//! domo-exp <experiment> [--nodes N] [--seed S] [--fast K]
//!
//! experiments:
//!   fig1     per-node delay map at two times
//!   fig6     accuracy / bounds / displacement vs MNT & MessageTracing
//!   fig7     the packet-loss sweep (10/20/30 %)
//!   fig8     the network-scale sweep (100/225/400 nodes)
//!   fig9     the effective-time-window-ratio sweep
//!   fig10    the graph-cut-size sweep
//!   table1   overhead comparison (plus measured PC-side cost)
//!   ablation quality ablations (FIFO mode, BLP, bound method, MNT oracle)
//!   workload trace/topology characterization + constraint diagnostics
//!   robust   the fault-injection sweep (all fault classes, rising rates)
//!   online   the domo-sink online service vs the offline pipeline
//!   all      everything above, in order
//! ```

use domo_experiments::figures;
use domo_experiments::scenario::Scenario;

struct Args {
    experiment: String,
    nodes: usize,
    seed: u64,
    fast: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: String::new(),
        nodes: 100,
        seed: 1,
        fast: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let Some(exp) = it.next() else {
        return Err("missing experiment name".into());
    };
    args.experiment = exp.clone();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--nodes" => args.nodes = value.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--fast" => args.fast = value.parse().map_err(|e| format!("--fast: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.fast == 0 {
        return Err("--fast must be positive".into());
    }
    Ok(args)
}

fn base_scenario(args: &Args) -> Scenario {
    Scenario::paper(args.nodes, args.seed).scaled_down(args.fast)
}

fn run(experiment: &str, args: &Args) {
    match experiment {
        "fig1" => println!("{}", figures::delay_map(base_scenario(args))),
        "fig6" => {
            let eval = figures::evaluate(base_scenario(args));
            println!("{}", eval.render_accuracy());
            println!("{}", eval.render_bounds());
            println!("{}", eval.render_displacement());
            println!(
                "(trace: {} unknowns; estimator {:.1}s, bounds {:.1}s)\n",
                eval.num_unknowns, eval.estimate_seconds, eval.bounds_seconds
            );
        }
        "fig7" => {
            let points = figures::loss_sweep(base_scenario(args), &[0.1, 0.2, 0.3]);
            println!("{}", figures::render_loss_sweep(&points));
        }
        "fig8" => {
            let scales: Vec<usize> = [100usize, 225, 400]
                .into_iter()
                .filter(|&n| n <= args.nodes.max(400))
                .collect();
            let points: Vec<(usize, figures::Evaluation)> = scales
                .iter()
                .map(|&n| {
                    (
                        n,
                        figures::evaluate(Scenario::paper(n, args.seed).scaled_down(args.fast)),
                    )
                })
                .collect();
            println!("{}", figures::render_scale_sweep(&points));
        }
        "fig9" => {
            let points = figures::window_ratio_sweep(
                base_scenario(args),
                &[0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            );
            println!("{}", figures::render_window_ratio_sweep(&points));
        }
        "fig10" => {
            let points = figures::cut_size_sweep(base_scenario(args), &[25, 50, 100, 200, 400]);
            println!("{}", figures::render_cut_size_sweep(&points));
        }
        "table1" => println!("{}", figures::table1(base_scenario(args))),
        "ablation" => println!("{}", figures::ablation_report(base_scenario(args))),
        "workload" => {
            let scenario = base_scenario(args);
            let run = domo_experiments::ScenarioRun::execute(scenario);
            if let Some(profile) = domo_net::TraceProfile::from_trace(&run.trace) {
                println!("{}", profile.render());
            }
            let diag = domo_core::diagnose(run.domo.view(), &run.scenario.estimator.constraints);
            println!("{}", diag.render());
        }
        "robust" => {
            let points = figures::fault_sweep(base_scenario(args), &[0.0, 0.05, 0.1, 0.2]);
            println!("{}", figures::render_fault_sweep(&points));
        }
        "online" => {
            let cmp = figures::online_comparison(base_scenario(args), &[1, 2, 4]);
            println!("{}", figures::render_online(&cmp));
        }
        "all" => {
            for exp in [
                "workload", "table1", "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation",
                "robust", "online",
            ] {
                run(exp, args);
            }
        }
        other => {
            eprintln!("unknown experiment '{other}' — see --help text in the module docs");
            std::process::exit(2);
        }
    }
}

fn main() {
    match parse_args() {
        Ok(args) => run(&args.experiment.clone(), &args),
        Err(msg) => {
            eprintln!("domo-exp: {msg}");
            eprintln!(
                "usage: domo-exp \
                 <fig1|fig6|fig7|fig8|fig9|fig10|table1|ablation|workload|robust|online|all> \
                 [--nodes N] [--seed S] [--fast K]"
            );
            std::process::exit(2);
        }
    }
}
