//! Evaluation metrics shared by every experiment.
//!
//! All scoring compares a reconstruction against the simulator's ground
//! truth. The three metric families mirror §VI.A of the paper:
//! absolute per-arrival-time error (estimated values), bound width
//! (bounds), and average displacement (event order).

use domo_core::{Estimates, TraceView};
use domo_net::NetworkTrace;
use domo_util::stats::Ecdf;

/// Per-variable absolute errors of a reconstruction (ms). Variables
/// without a value are skipped.
pub fn absolute_errors(
    view: &TraceView,
    trace: &NetworkTrace,
    value_of: impl Fn(usize) -> Option<f64>,
) -> Vec<f64> {
    let mut errors = Vec::new();
    for (var, hr) in view.vars().iter().enumerate() {
        let pid = view.packet(hr.packet).pid;
        // A sanitized view can hold fault-corrupted records the ground
        // truth never saw; those variables are unscorable — skip them.
        let Some(truth) = trace.truth(pid) else {
            continue;
        };
        let truth = truth[hr.hop].as_millis_f64();
        if let Some(v) = value_of(var) {
            errors.push((v - truth).abs());
        }
    }
    errors
}

/// Absolute errors of Domo's estimated values.
pub fn domo_errors(view: &TraceView, trace: &NetworkTrace, est: &Estimates) -> Vec<f64> {
    absolute_errors(view, trace, |v| est.time_of(v))
}

/// Fraction of truths lying inside `[lb − tol, ub + tol]`.
pub fn coverage(
    view: &TraceView,
    trace: &NetworkTrace,
    bound_of: impl Fn(usize) -> Option<(f64, f64)>,
    tol: f64,
) -> f64 {
    let mut inside = 0usize;
    let mut total = 0usize;
    for (var, hr) in view.vars().iter().enumerate() {
        let Some((lo, hi)) = bound_of(var) else {
            continue;
        };
        let pid = view.packet(hr.packet).pid;
        let Some(truth) = trace.truth(pid) else {
            continue;
        };
        let truth = truth[hr.hop].as_millis_f64();
        total += 1;
        if truth >= lo - tol && truth <= hi + tol {
            inside += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        inside as f64 / total as f64
    }
}

/// Bound widths (ms) of the computed targets.
pub fn bound_widths(bound_of: impl Fn(usize) -> Option<(f64, f64)>, num_vars: usize) -> Vec<f64> {
    (0..num_vars)
        .filter_map(|v| bound_of(v).map(|(lo, hi)| hi - lo))
        .collect()
}

/// A labeled empirical distribution, ready for text rendering.
#[derive(Debug, Clone)]
pub struct Series {
    /// Label shown in reports.
    pub name: String,
    /// Raw sample.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a labeled series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Mean of the sample (`NaN` for an empty series).
    pub fn mean(&self) -> f64 {
        domo_util::stats::mean(&self.values).unwrap_or(f64::NAN)
    }

    /// The ECDF of the sample.
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::from_values(&self.values)
    }

    /// Renders the CDF as `x  P[X ≤ x]` rows (the series a plot would
    /// show), at `points` evenly spaced x-values.
    pub fn render_cdf(&self, points: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# CDF of {} (n={}, mean={:.2})",
            self.name,
            self.values.len(),
            self.mean()
        );
        for (x, p) in self.ecdf().curve(points) {
            let _ = writeln!(out, "{x:10.3}  {p:7.4}");
        }
        out
    }
}

/// Renders a fixed-width text table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write;
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line: Vec<String> = header
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = width[i]))
        .collect();
    let _ = writeln!(out, "{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .take(cols)
            .map(|(i, c)| format!("{c:>w$}", w = width[i]))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use domo_core::EstimatorConfig;

    #[test]
    fn errors_zero_for_perfect_reconstruction() {
        let trace = domo_net::run_simulation(&domo_net::NetworkConfig::small(9, 81));
        let view = TraceView::new(trace.packets.clone());
        let errs = absolute_errors(&view, &trace, |var| {
            let hr = view.vars()[var];
            Some(trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64())
        });
        assert!(!errs.is_empty());
        assert!(errs.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn domo_errors_align_with_estimates() {
        let trace = domo_net::run_simulation(&domo_net::NetworkConfig::small(9, 82));
        let view = TraceView::new(trace.packets.clone());
        let est = domo_core::estimate(&view, &EstimatorConfig::default());
        let errs = domo_errors(&view, &trace, &est);
        assert_eq!(errs.len(), view.num_vars());
        assert!(errs.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn coverage_counts_containment() {
        let trace = domo_net::run_simulation(&domo_net::NetworkConfig::small(9, 83));
        let view = TraceView::new(trace.packets.clone());
        // Infinite bounds: full coverage.
        let c = coverage(
            &view,
            &trace,
            |_| Some((f64::NEG_INFINITY, f64::INFINITY)),
            0.0,
        );
        assert_eq!(c, 1.0);
        // Impossible bounds: zero coverage.
        let c = coverage(&view, &trace, |_| Some((0.0, 0.0)), 0.0);
        assert_eq!(c, 0.0);
        // No bounds at all: vacuous full coverage.
        let c = coverage(&view, &trace, |_| None, 0.0);
        assert_eq!(c, 1.0);
    }

    #[test]
    fn series_statistics() {
        let s = Series::new("widths", vec![1.0, 3.0]);
        assert_eq!(s.mean(), 2.0);
        let cdf = s.render_cdf(3);
        assert!(cdf.contains("widths"));
        assert!(cdf.lines().count() >= 3);
        assert!(Series::new("empty", vec![]).mean().is_nan());
    }

    #[test]
    fn table_renders_aligned() {
        let table = render_table(
            "Demo",
            &["approach", "value"],
            &[
                vec!["Domo".into(), "3.58".into()],
                vec!["MNT".into(), "9.33".into()],
            ],
        );
        assert!(table.contains("== Demo =="));
        assert!(table.contains("Domo"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: both data lines have the same length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn bound_widths_skip_missing() {
        let widths = bound_widths(|v| if v == 1 { Some((0.0, 5.0)) } else { None }, 3);
        assert_eq!(widths, vec![5.0]);
    }
}
