//! One function per table/figure of the paper's evaluation (§VI).
//!
//! Every function returns a structured result plus a `render()` that
//! prints the same rows/series the paper plots. Absolute numbers differ
//! from the paper's (different simulator, different hardware); the
//! *shape* — who wins and by roughly what factor, and how each parameter
//! sweep bends the curves — is the reproduction target. EXPERIMENTS.md
//! records paper-vs-measured for every entry.

use crate::metrics::{bound_widths, coverage, domo_errors, render_table, Series};
use crate::scenario::{Scenario, ScenarioRun};
use domo_baselines::{message_tracing, mnt::run_mnt, overhead, ArrivalEvent};
use domo_core::TimeRef;
use domo_sink::service::{SinkConfig, SinkService};
use domo_util::stats::average_displacement;

/// The joint evaluation of one scenario against both baselines — the
/// ingredients of Figures 6, 7 and 8.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Scenario name.
    pub name: String,
    /// Domo estimated-value absolute errors (ms).
    pub domo_err: Series,
    /// MNT estimated-value absolute errors (ms).
    pub mnt_err: Series,
    /// Domo bound widths (ms) over the sampled targets.
    pub domo_width: Series,
    /// MNT bound widths (ms) over the same targets.
    pub mnt_width: Series,
    /// Fraction of truths inside Domo's bounds (soundness check).
    pub domo_bound_coverage: f64,
    /// Domo's event-order displacement.
    pub domo_displacement: f64,
    /// MessageTracing's event-order displacement.
    pub msgtracing_displacement: f64,
    /// Estimator wall-clock seconds.
    pub estimate_seconds: f64,
    /// Bound-solver wall-clock seconds.
    pub bounds_seconds: f64,
    /// Unknowns in the trace.
    pub num_unknowns: usize,
}

/// Runs a scenario and scores Domo against both baselines.
pub fn evaluate(scenario: Scenario) -> Evaluation {
    let run = ScenarioRun::execute(scenario);
    let view = run.domo.view();
    let trace = &run.trace;

    // --- Estimated values: Domo vs MNT. ---
    let domo_err = Series::new("Domo error", domo_errors(view, trace, &run.estimates));
    let mnt_result = run_mnt(trace, view, &run.scenario.mnt);
    let mnt_err = Series::new(
        "MNT error",
        crate::metrics::absolute_errors(view, trace, |v| Some(mnt_result.estimate[v])),
    );

    // --- Bounds: Domo (sampled LPs) vs MNT (same targets). ---
    let (bounds, bounds_seconds) = run.run_bounds();
    let targets = run.bound_targets();
    let domo_width = Series::new(
        "Domo bound width",
        bound_widths(|v| bounds.of(v), view.num_vars()),
    );
    let mnt_width = Series::new(
        "MNT bound width",
        targets
            .iter()
            .map(|&v| mnt_result.ub[v] - mnt_result.lb[v])
            .collect(),
    );
    let domo_bound_coverage = coverage(view, trace, |v| bounds.of(v), 0.5);

    // --- Event order: Domo vs MessageTracing. ---
    let truth = message_tracing::truth_order(trace, view);
    let domo_order =
        message_tracing::order_by_estimates(view, |pi, hop| match view.time_ref(pi, hop) {
            TimeRef::Known(t) => Some(t),
            TimeRef::Var(v) => run.estimates.time_of(v),
        });
    let domo_displacement = displacement_or_zero(&truth, &domo_order);
    let mt_order = message_tracing::reconstruct_order(trace, view);
    let msgtracing_displacement = displacement_or_zero(&truth, &mt_order.order);

    Evaluation {
        name: run.scenario.name.clone(),
        domo_err,
        mnt_err,
        domo_width,
        mnt_width,
        domo_bound_coverage,
        domo_displacement,
        msgtracing_displacement,
        estimate_seconds: run.estimate_seconds,
        bounds_seconds,
        num_unknowns: view.num_vars(),
    }
}

fn displacement_or_zero(truth: &[ArrivalEvent], recon: &[ArrivalEvent]) -> f64 {
    average_displacement(truth, recon).unwrap_or(0.0)
}

impl Evaluation {
    /// Figure 6(a): estimated-value accuracy, Domo vs MNT.
    pub fn render_accuracy(&self) -> String {
        let rows = vec![
            vec![
                "Domo".to_string(),
                format!("{:.2}", self.domo_err.mean()),
                format!(
                    "{:.1}%",
                    100.0 * self.domo_err.ecdf().fraction_at_or_below(4.0)
                ),
            ],
            vec![
                "MNT".to_string(),
                format!("{:.2}", self.mnt_err.mean()),
                format!(
                    "{:.1}%",
                    100.0 * self.mnt_err.ecdf().fraction_at_or_below(4.0)
                ),
            ],
        ];
        render_table(
            &format!("Fig 6(a) — estimated-value accuracy [{}]", self.name),
            &["approach", "avg error (ms)", "errors < 4ms"],
            &rows,
        )
    }

    /// Figure 6(b): bound accuracy, Domo vs MNT.
    pub fn render_bounds(&self) -> String {
        let rows = vec![
            vec![
                "Domo".to_string(),
                format!("{:.2}", self.domo_width.mean()),
                format!("{:.1}%", 100.0 * self.domo_bound_coverage),
            ],
            vec![
                "MNT".to_string(),
                format!("{:.2}", self.mnt_width.mean()),
                "-".to_string(),
            ],
        ];
        render_table(
            &format!("Fig 6(b) — bound accuracy [{}]", self.name),
            &["approach", "avg bound width (ms)", "truth coverage"],
            &rows,
        )
    }

    /// Figure 6(c): displacement, Domo vs MessageTracing.
    pub fn render_displacement(&self) -> String {
        let rows = vec![
            vec!["Domo".to_string(), format!("{:.3}", self.domo_displacement)],
            vec![
                "MsgTracing".to_string(),
                format!("{:.3}", self.msgtracing_displacement),
            ],
        ];
        render_table(
            &format!("Fig 6(c) — event-order displacement [{}]", self.name),
            &["approach", "avg displacement"],
            &rows,
        )
    }
}

/// Figure 7: the loss sweep — each entry is a full [`Evaluation`] at an
/// extra-loss rate.
pub fn loss_sweep(base: Scenario, rates: &[f64]) -> Vec<(f64, Evaluation)> {
    rates
        .iter()
        .map(|&rate| {
            let mut s = base.clone();
            s.name = format!("{}+loss{:.0}%", s.name, rate * 100.0);
            s.extra_loss = rate;
            (rate, evaluate(s))
        })
        .collect()
}

/// Renders the loss sweep as the three sub-figure tables (7a/7b/7c).
pub fn render_loss_sweep(points: &[(f64, Evaluation)]) -> String {
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for (rate, e) in points {
        let pct = format!("{:.0}%", rate * 100.0);
        rows_a.push(vec![
            pct.clone(),
            format!("{:.2}", e.domo_err.mean()),
            format!("{:.2}", e.mnt_err.mean()),
        ]);
        rows_b.push(vec![
            pct.clone(),
            format!("{:.2}", e.domo_width.mean()),
            format!("{:.2}", e.mnt_width.mean()),
        ]);
        rows_c.push(vec![
            pct,
            format!("{:.3}", e.domo_displacement),
            format!("{:.3}", e.msgtracing_displacement),
        ]);
    }
    format!(
        "{}\n{}\n{}",
        render_table(
            "Fig 7(a) — error vs packet loss",
            &["loss", "Domo (ms)", "MNT (ms)"],
            &rows_a
        ),
        render_table(
            "Fig 7(b) — bound width vs packet loss",
            &["loss", "Domo (ms)", "MNT (ms)"],
            &rows_b
        ),
        render_table(
            "Fig 7(c) — displacement vs packet loss",
            &["loss", "Domo", "MsgTracing"],
            &rows_c
        ),
    )
}

/// One point of the robustness sweep: every fault class injected at a
/// per-class rate, reconstruction run through the sanitizing pipeline.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Per-class fault rate.
    pub rate: f64,
    /// Records handed to the sink after injection.
    pub records: usize,
    /// Records the sanitizer quarantined.
    pub quarantined: usize,
    /// Mean estimated-value error over the surviving records (ms).
    pub error_ms: f64,
    /// Mean bound width over the sampled targets (ms).
    pub bound_width_ms: f64,
    /// Fraction of truths inside the bounds.
    pub bound_coverage: f64,
    /// Windows the estimator had to relax (upper-sum or FIFO rows
    /// dropped).
    pub relaxed_windows: usize,
    /// Windows abandoned to interval midpoints.
    pub unsolved_windows: usize,
}

/// The robustness sweep: injects **every** fault class at each rate
/// (drops, bursts, duplicates, reordering, corrupted/saturated fields,
/// clock jumps, reboots, truncated paths), sanitizes, and reports how
/// reconstruction accuracy degrades alongside the quarantine and
/// fallback counters. The companion to the paper's Figure 7 loss sweep
/// for faults the original evaluation never injected.
pub fn fault_sweep(base: Scenario, rates: &[f64]) -> Vec<FaultSweepPoint> {
    use domo_core::{Bounds, BoundsStats, Domo, Estimates, EstimatorStats, SanitizeConfig};

    rates
        .iter()
        .map(|&rate| {
            let mut s = base.clone();
            s.name = format!("{}+faults{:.0}%", s.name, rate * 100.0);
            if rate > 0.0 {
                s.net.faults = Some(domo_net::FaultConfig::all(rate, s.net.seed ^ 0xFA17));
            }
            let trace = domo_net::run_simulation(&s.net);
            let domo = Domo::sanitized_from_trace(&trace, &SanitizeConfig::default());
            let view = domo.view();
            let est = domo
                .try_estimate(&s.estimator)
                .unwrap_or_else(|_| Estimates {
                    times_ms: vec![None; view.num_vars()],
                    stats: EstimatorStats::default(),
                });
            let n = view.num_vars();
            let want = s.bound_sample.min(n);
            let targets: Vec<usize> = match n.checked_div(want) {
                Some(step) => (0..n).step_by(step.max(1)).take(want).collect(),
                None => Vec::new(),
            };
            let bounds = domo
                .try_bounds(&s.bounds, &targets)
                .unwrap_or_else(|_| Bounds {
                    lb: vec![None; n],
                    ub: vec![None; n],
                    stats: BoundsStats::default(),
                });
            let errs = domo_errors(view, &trace, &est);
            let widths = bound_widths(|v| bounds.of(v), n);
            FaultSweepPoint {
                rate,
                records: trace.packets.len(),
                quarantined: domo.quarantine().len(),
                error_ms: domo_util::stats::mean(&errs).unwrap_or(f64::NAN),
                bound_width_ms: domo_util::stats::mean(&widths).unwrap_or(f64::NAN),
                bound_coverage: coverage(view, &trace, |v| bounds.of(v), 0.5),
                relaxed_windows: est.stats.relaxed_retries + est.stats.fifo_relaxed_windows,
                unsolved_windows: est.stats.unsolved_windows,
            }
        })
        .collect()
}

/// Renders the robustness sweep as one table.
pub fn render_fault_sweep(points: &[FaultSweepPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.rate * 100.0),
                p.records.to_string(),
                p.quarantined.to_string(),
                format!("{:.2}", p.error_ms),
                format!("{:.2}", p.bound_width_ms),
                format!("{:.1}%", 100.0 * p.bound_coverage),
                p.relaxed_windows.to_string(),
                p.unsolved_windows.to_string(),
            ]
        })
        .collect();
    render_table(
        "Robustness — accuracy vs injected fault rate (all fault classes)",
        &[
            "rate",
            "records",
            "quarantined",
            "err (ms)",
            "width (ms)",
            "coverage",
            "relaxed",
            "unsolved",
        ],
        &rows,
    )
}

/// Figure 8: the network-scale sweep.
pub fn scale_sweep(scales: &[usize], seed: u64) -> Vec<(usize, Evaluation)> {
    scales
        .iter()
        .map(|&n| (n, evaluate(Scenario::paper(n, seed))))
        .collect()
}

/// Renders the scale sweep as the three sub-figure tables (8a/8b/8c).
pub fn render_scale_sweep(points: &[(usize, Evaluation)]) -> String {
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for (n, e) in points {
        rows_a.push(vec![
            n.to_string(),
            format!("{:.2}", e.domo_err.mean()),
            format!("{:.2}", e.mnt_err.mean()),
        ]);
        rows_b.push(vec![
            n.to_string(),
            format!("{:.2}", e.domo_width.mean()),
            format!("{:.2}", e.mnt_width.mean()),
        ]);
        rows_c.push(vec![
            n.to_string(),
            format!("{:.3}", e.domo_displacement),
            format!("{:.3}", e.msgtracing_displacement),
        ]);
    }
    format!(
        "{}\n{}\n{}",
        render_table(
            "Fig 8(a) — error vs network scale",
            &["nodes", "Domo (ms)", "MNT (ms)"],
            &rows_a
        ),
        render_table(
            "Fig 8(b) — bound width vs network scale",
            &["nodes", "Domo (ms)", "MNT (ms)"],
            &rows_b
        ),
        render_table(
            "Fig 8(c) — displacement vs network scale",
            &["nodes", "Domo", "MsgTracing"],
            &rows_c
        ),
    )
}

/// One point of the Figure 9 sweep (effective time window ratio).
#[derive(Debug, Clone)]
pub struct WindowRatioPoint {
    /// The effective time window ratio.
    pub ratio: f64,
    /// Mean estimated-value error (ms).
    pub error_ms: f64,
    /// Estimator wall-clock per reconstructed delay (ms).
    pub time_per_delay_ms: f64,
}

/// Figure 9: sweep of the effective time window ratio (§IV.B).
pub fn window_ratio_sweep(base: Scenario, ratios: &[f64]) -> Vec<WindowRatioPoint> {
    ratios
        .iter()
        .map(|&ratio| {
            let mut s = base.clone();
            s.name = format!("{}-ratio{ratio:.1}", s.name);
            s.estimator.effective_window_ratio = ratio;
            let run = ScenarioRun::execute(s);
            let errs = domo_errors(run.domo.view(), &run.trace, &run.estimates);
            // Re-time the estimator over a few repeats (min of runs) so
            // the per-delay cost curve is not dominated by system noise.
            let best = (0..3)
                .map(|_| {
                    let start = std::time::Instant::now();
                    let _ = run.domo.estimate(&run.scenario.estimator);
                    start.elapsed().as_secs_f64()
                })
                .fold(run.estimate_seconds, f64::min);
            WindowRatioPoint {
                ratio,
                error_ms: domo_util::stats::mean(&errs).unwrap_or(f64::NAN),
                time_per_delay_ms: 1000.0 * best / run.domo.view().num_vars().max(1) as f64,
            }
        })
        .collect()
}

/// Renders the Figure 9 tables (9a accuracy, 9b execution time).
pub fn render_window_ratio_sweep(points: &[WindowRatioPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.ratio),
                format!("{:.2}", p.error_ms),
                format!("{:.3}", p.time_per_delay_ms),
            ]
        })
        .collect();
    render_table(
        "Fig 9 — effective time window ratio",
        &["ratio", "avg error (ms)", "time/delay (ms)"],
        &rows,
    )
}

/// One point of the Figure 10 sweep (graph cut size).
#[derive(Debug, Clone)]
pub struct CutSizePoint {
    /// Sub-graph vertex budget.
    pub cut_size: usize,
    /// Mean bound width (ms).
    pub width_ms: f64,
    /// Bound-solver wall-clock per bound (ms).
    pub time_per_bound_ms: f64,
    /// Cut edges after BLP, averaged per target.
    pub avg_cut_edges: f64,
}

/// Figure 10: sweep of the graph cut size (§IV.C).
pub fn cut_size_sweep(base: Scenario, cut_sizes: &[usize]) -> Vec<CutSizePoint> {
    cut_sizes
        .iter()
        .map(|&cut| {
            let mut s = base.clone();
            s.name = format!("{}-cut{cut}", s.name);
            s.bounds.graph_cut_size = cut;
            let run = ScenarioRun::execute(s);
            let (bounds, seconds) = run.run_bounds();
            let widths = bound_widths(|v| bounds.of(v), run.domo.view().num_vars());
            CutSizePoint {
                cut_size: cut,
                width_ms: domo_util::stats::mean(&widths).unwrap_or(f64::NAN),
                time_per_bound_ms: 1000.0 * seconds / bounds.stats.targets.max(1) as f64,
                avg_cut_edges: bounds.stats.cut_after as f64 / bounds.stats.targets.max(1) as f64,
            }
        })
        .collect()
}

/// Renders the Figure 10 tables (10a bound width, 10b execution time).
pub fn render_cut_size_sweep(points: &[CutSizePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.cut_size.to_string(),
                format!("{:.2}", p.width_ms),
                format!("{:.2}", p.time_per_bound_ms),
                format!("{:.1}", p.avg_cut_edges),
            ]
        })
        .collect();
    render_table(
        "Fig 10 — graph cut size",
        &[
            "cut size",
            "avg bound width (ms)",
            "time/bound (ms)",
            "cut edges",
        ],
        &rows,
    )
}

/// The quality ablation of DESIGN.md §5: FIFO treatment, BLP boundary
/// tuning, propagation-only bounds, and the MNT oracle idealization,
/// each scored on the same trace.
pub fn ablation_report(scenario: Scenario) -> String {
    use domo_baselines::AnchorOracle;
    use domo_core::{BoundMethod, FifoMode};

    let run = ScenarioRun::execute(scenario.clone());
    let view = run.domo.view();
    let trace = &run.trace;
    let mean = |v: &[f64]| domo_util::stats::mean(v).unwrap_or(f64::NAN);

    // --- FIFO treatment (estimator). ---
    let mut fifo_rows = Vec::new();
    for (label, mode, window) in [
        ("off", FifoMode::Off, scenario.estimator.window_packets),
        (
            "linearized",
            FifoMode::Linearized,
            scenario.estimator.window_packets,
        ),
        ("sdp", FifoMode::SdpRelaxation, 6),
    ] {
        let cfg = domo_core::EstimatorConfig {
            fifo_mode: mode,
            window_packets: window,
            ..scenario.estimator.clone()
        };
        let start = std::time::Instant::now();
        let est = run.domo.estimate(&cfg);
        let errs = domo_errors(view, trace, &est);
        fifo_rows.push(vec![
            label.to_string(),
            format!("{:.2}", mean(&errs)),
            format!("{}", est.stats.sdp_windows),
            format!("{:.2}s", start.elapsed().as_secs_f64()),
        ]);
    }

    // --- Bounds: BLP / BFS / propagation-only. ---
    let targets = run.bound_targets();
    let mut bound_rows = Vec::new();
    for (label, use_blp, method) in [
        ("bfs ball", false, BoundMethod::SubgraphLp),
        ("blp refined", true, BoundMethod::SubgraphLp),
        ("propagation only", true, BoundMethod::PropagationOnly),
    ] {
        let cfg = domo_core::BoundsConfig {
            use_blp,
            method,
            ..scenario.bounds.clone()
        };
        let start = std::time::Instant::now();
        let b = run.domo.bounds(&cfg, &targets);
        bound_rows.push(vec![
            label.to_string(),
            format!("{:.2}", b.mean_width().unwrap_or(f64::NAN)),
            format!("{}", b.stats.cut_after),
            format!("{:.2}s", start.elapsed().as_secs_f64()),
        ]);
    }

    // --- MNT oracle idealization. ---
    let mut mnt_rows = Vec::new();
    for (label, oracle) in [
        ("idealized (true order)", AnchorOracle::TrueOrder),
        ("sink-side (decided only)", AnchorOracle::DecidedOnly),
    ] {
        let res = run_mnt(
            trace,
            view,
            &domo_baselines::MntConfig {
                oracle,
                ..scenario.mnt.clone()
            },
        );
        let errs = crate::metrics::absolute_errors(view, trace, |v| Some(res.estimate[v]));
        mnt_rows.push(vec![
            label.to_string(),
            format!("{:.2}", mean(&errs)),
            format!("{:.2}", res.mean_width().unwrap_or(f64::NAN)),
        ]);
    }

    format!(
        "{}\n{}\n{}",
        render_table(
            &format!("Ablation — FIFO treatment [{}]", run.scenario.name),
            &["mode", "avg error (ms)", "lifted windows", "time"],
            &fifo_rows,
        ),
        render_table(
            "Ablation — bound method",
            &["method", "avg width (ms)", "cut edges", "time"],
            &bound_rows,
        ),
        render_table(
            "Ablation — MNT oracle",
            &["oracle", "avg error (ms)", "avg width (ms)"],
            &mnt_rows,
        ),
    )
}

/// Table I: overhead comparison, with the PC-side computation measured
/// on a real run.
pub fn table1(scenario: Scenario) -> String {
    let run = ScenarioRun::execute(scenario);
    let (_, bounds_seconds) = run.run_bounds();
    let per_delay_ms = 1000.0 * run.estimate_seconds / run.domo.view().num_vars().max(1) as f64;
    let log_bytes = overhead::message_tracing_log_bytes(&run.trace);
    let max_log = log_bytes.iter().max().copied().unwrap_or(0);

    let rows: Vec<Vec<String>> = overhead::table_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.approach.to_string(),
                format!("{} bytes", r.message_bytes),
                r.node_computation.to_string(),
                r.pc_computation.to_string(),
                r.node_memory.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        "Table I — overhead comparison",
        &["approach", "message", "node comp.", "PC comp.", "node mem."],
        &rows,
    );
    out.push_str(&format!(
        "\nmeasured PC-side cost [{}]: {:.2} ms per estimated delay, {:.1}s bounds pass;\n\
         MessageTracing max per-node log volume on this trace: {} bytes\n",
        run.scenario.name, per_delay_ms, bounds_seconds, max_log
    ));
    out
}

/// Renders a spatial delay heat map as ASCII art (the paper's Figure 1
/// draws dots sized by delay; we draw intensity characters on a grid).
/// `values` maps node index → mean delay; the sink renders as `#`.
fn render_heat_map(
    positions: &[domo_net::Position],
    values: &std::collections::HashMap<usize, f64>,
    title: &str,
) -> String {
    use std::fmt::Write;
    const COLS: usize = 40;
    const ROWS: usize = 20;
    const RAMP: [char; 6] = ['.', ':', 'o', 'O', '@', '%'];

    let max_x = positions.iter().map(|p| p.x).fold(1.0_f64, f64::max);
    let max_y = positions.iter().map(|p| p.y).fold(1.0_f64, f64::max);
    let (lo, hi) = values
        .values()
        .fold((f64::INFINITY, 0.0_f64), |(l, h), &v| (l.min(v), h.max(v)));
    let span = (hi - lo).max(1e-9);

    let mut grid = vec![[' '; COLS]; ROWS];
    for (i, pos) in positions.iter().enumerate() {
        let c = ((pos.x / max_x) * (COLS - 1) as f64).round() as usize;
        let r = ((pos.y / max_y) * (ROWS - 1) as f64).round() as usize;
        let glyph = if i == 0 {
            '#'
        } else if let Some(&v) = values.get(&i) {
            RAMP[(((v - lo) / span) * (RAMP.len() - 1) as f64).round() as usize]
        } else {
            continue;
        };
        grid[r][c] = glyph;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title}  [{lo:.1} ms '.' … {hi:.1} ms '%'; '#' = sink]"
    );
    for row in &grid {
        let _ = writeln!(out, "  {}", row.iter().collect::<String>());
    }
    out
}

/// Figure 1: the end-to-end delay map of the deployment at two times —
/// qualitative, regenerated from a simulated trace.
pub fn delay_map(scenario: Scenario) -> String {
    let run = ScenarioRun::execute(scenario);
    let view = run.domo.view();
    let trace = &run.trace;
    let mid = match (trace.packets.first(), trace.packets.last()) {
        (Some(f), Some(l)) => f.gen_time + (l.sink_arrival - f.gen_time) / 2,
        _ => domo_util::time::SimTime::ZERO,
    };

    // Mean e2e per origin in each half of the trace.
    let n = trace.num_nodes;
    let mut acc = vec![(0.0f64, 0usize, 0.0f64, 0usize); n];
    for p in view.packets() {
        let e2e = p.e2e_delay().as_millis_f64();
        let slot = &mut acc[p.pid.origin.index()];
        if p.gen_time < mid {
            slot.0 += e2e;
            slot.1 += 1;
        } else {
            slot.2 += e2e;
            slot.3 += 1;
        }
    }
    let rows: Vec<Vec<String>> = (1..n)
        .filter(|&i| acc[i].1 > 0 || acc[i].3 > 0)
        .map(|i| {
            let (x, y) = (trace.positions[i].x, trace.positions[i].y);
            let t1 = if acc[i].1 > 0 {
                acc[i].0 / acc[i].1 as f64
            } else {
                f64::NAN
            };
            let t2 = if acc[i].3 > 0 {
                acc[i].2 / acc[i].3 as f64
            } else {
                f64::NAN
            };
            vec![
                format!("n{i}"),
                format!("({x:.0},{y:.0})"),
                format!("{t1:.1}"),
                format!("{t2:.1}"),
            ]
        })
        .collect();

    // The two spatial heat maps (the paper's Figure 1(a)/(b)).
    let means = |first: bool| -> std::collections::HashMap<usize, f64> {
        (1..n)
            .filter_map(|i| {
                let (sum, count) = if first {
                    (acc[i].0, acc[i].1)
                } else {
                    (acc[i].2, acc[i].3)
                };
                (count > 0).then(|| (i, sum / count as f64))
            })
            .collect()
    };
    format!(
        "{}\n{}\n{}",
        render_heat_map(
            &trace.positions,
            &means(true),
            "Fig 1(a) — mean e2e delay, first half",
        ),
        render_heat_map(
            &trace.positions,
            &means(false),
            "Fig 1(b) — mean e2e delay, second half",
        ),
        render_table(
            "Fig 1 — per-node mean end-to-end delay at two times (ms)",
            &["node", "position", "t1 window", "t2 window"],
            &rows,
        )
    )
}

/// One shard-count row of the online-service comparison (`domo-exp
/// online`). No paper analogue: the experiment checks that the
/// `domo-sink` service — windowed shard estimators behind bounded
/// queues — holds the offline pipeline's accuracy while running live.
#[derive(Debug, Clone)]
pub struct OnlinePoint {
    /// Worker shards the service ran with.
    pub shards: usize,
    /// Mean absolute interior-hop error vs ground truth (ms).
    pub error_ms: f64,
    /// Reconstructions the service emitted.
    pub emitted: u64,
    /// Records quarantined by the sanitize path.
    pub quarantined: u64,
    /// Records dropped by queue backpressure.
    pub dropped: u64,
    /// Wall-clock seconds from first ingest through drain.
    pub seconds: f64,
}

/// The full online-vs-offline accuracy comparison.
#[derive(Debug, Clone)]
pub struct OnlineComparison {
    /// Mean absolute error of the offline whole-trace estimator (ms).
    pub offline_error_ms: f64,
    /// Packets the simulated trace delivered.
    pub delivered: usize,
    /// One row per shard count.
    pub points: Vec<OnlinePoint>,
}

/// Feeds the scenario's trace through an in-process [`SinkService`] at
/// each shard count and scores the stored reconstructions against
/// ground truth, next to the offline estimator on the same trace.
///
/// Only interior hops are scored (generation and sink arrival are
/// observed, not estimated), matching [`domo_errors`]'s variable set on
/// a fault-free trace.
pub fn online_comparison(scenario: Scenario, shard_counts: &[usize]) -> OnlineComparison {
    let run = ScenarioRun::execute(scenario);
    let trace = &run.trace;
    let offline = Series::new(
        "offline error",
        domo_errors(run.domo.view(), trace, &run.estimates),
    );
    let points = shard_counts
        .iter()
        .map(|&shards| {
            let service = SinkService::start(SinkConfig {
                shards,
                estimator: run.scenario.estimator.clone(),
                // Retain every reconstruction so all of them are scorable.
                max_retained_packets: trace.packets.len().max(1),
                ..SinkConfig::default()
            });
            let start = std::time::Instant::now();
            for p in &trace.packets {
                service.ingest(p.clone());
            }
            service.drain();
            let seconds = start.elapsed().as_secs_f64();
            let mut errors = Vec::new();
            for p in &trace.packets {
                let (Some(r), Some(truth)) = (service.reconstruction(p.pid), trace.truth(p.pid))
                else {
                    continue;
                };
                for (est, truth) in r
                    .hop_times_ms
                    .iter()
                    .zip(truth)
                    .skip(1)
                    .take(r.hop_times_ms.len().saturating_sub(2))
                {
                    errors.push((est - truth.as_millis_f64()).abs());
                }
            }
            let stats = service.stats();
            service.shutdown();
            OnlinePoint {
                shards,
                error_ms: Series::new("online error", errors).mean(),
                emitted: stats.emitted,
                quarantined: stats.quarantined,
                dropped: stats.backpressure_dropped,
                seconds,
            }
        })
        .collect();
    OnlineComparison {
        offline_error_ms: offline.mean(),
        delivered: trace.packets.len(),
        points,
    }
}

/// Renders the online-vs-offline comparison table.
pub fn render_online(cmp: &OnlineComparison) -> String {
    let mut rows = vec![vec![
        "offline (whole trace)".to_string(),
        format!("{:.2}", cmp.offline_error_ms),
        cmp.delivered.to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]];
    for p in &cmp.points {
        rows.push(vec![
            format!("online, {} shard(s)", p.shards),
            format!("{:.2}", p.error_ms),
            p.emitted.to_string(),
            p.quarantined.to_string(),
            p.dropped.to_string(),
            format!("{:.2}", p.seconds),
        ]);
    }
    render_table(
        &format!(
            "Online sink service vs offline pipeline ({} delivered packets)",
            cmp.delivered
        ),
        &[
            "pipeline",
            "err (ms)",
            "emitted",
            "quarantined",
            "dropped",
            "secs",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_eval() -> Evaluation {
        evaluate(Scenario::smoke(95))
    }

    #[test]
    fn evaluation_shows_domo_ahead() {
        let e = smoke_eval();
        assert!(
            e.domo_err.mean() < e.mnt_err.mean(),
            "Domo ({:.2}) must beat MNT ({:.2}) on estimates",
            e.domo_err.mean(),
            e.mnt_err.mean()
        );
        assert!(
            e.domo_width.mean() < e.mnt_width.mean(),
            "Domo ({:.2}) must beat MNT ({:.2}) on bounds",
            e.domo_width.mean(),
            e.mnt_width.mean()
        );
        assert!(
            e.domo_displacement < e.msgtracing_displacement,
            "Domo ({:.3}) must beat MessageTracing ({:.3}) on order",
            e.domo_displacement,
            e.msgtracing_displacement
        );
        assert!(e.domo_bound_coverage > 0.9);
    }

    #[test]
    fn renderers_produce_tables() {
        let e = smoke_eval();
        assert!(e.render_accuracy().contains("Fig 6(a)"));
        assert!(e.render_bounds().contains("Fig 6(b)"));
        assert!(e.render_displacement().contains("Fig 6(c)"));
    }

    #[test]
    fn fault_sweep_degrades_gracefully() {
        let pts = fault_sweep(Scenario::smoke(100), &[0.0, 0.2]);
        assert_eq!(pts.len(), 2);
        // Fault-free point: nothing quarantined, paper-regime accuracy.
        assert_eq!(pts[0].quarantined, 0);
        assert!(pts[0].error_ms < 15.0, "clean error {}", pts[0].error_ms);
        // Aggressive faults: records quarantined, finite (degraded but
        // usable) outputs — and no panic anywhere in the pipeline.
        assert!(pts[1].quarantined > 0, "20% faults must quarantine records");
        assert!(pts[1].error_ms.is_finite());
        assert!(pts[1].bound_width_ms.is_finite());
        let rendered = render_fault_sweep(&pts);
        assert!(rendered.contains("Robustness"));
        assert!(rendered.contains("quarantined"));
    }

    #[test]
    fn window_ratio_sweep_runs() {
        let pts = window_ratio_sweep(Scenario::smoke(96), &[0.3, 0.9]);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.error_ms.is_finite()));
        assert!(render_window_ratio_sweep(&pts).contains("Fig 9"));
    }

    #[test]
    fn cut_size_sweep_runs() {
        let pts = cut_size_sweep(Scenario::smoke(97), &[20, 120]);
        assert_eq!(pts.len(), 2);
        // Bigger sub-graphs never loosen the mean width (small slack for
        // LP tolerance).
        assert!(pts[1].width_ms <= pts[0].width_ms + 0.5);
        assert!(render_cut_size_sweep(&pts).contains("Fig 10"));
    }

    #[test]
    fn online_comparison_tracks_the_offline_pipeline() {
        let cmp = online_comparison(Scenario::smoke(100), &[1, 4]);
        assert_eq!(cmp.points.len(), 2);
        assert!(cmp.delivered > 0);
        for p in &cmp.points {
            assert_eq!(p.emitted, cmp.delivered as u64);
            assert_eq!(p.dropped, 0);
            assert!(p.error_ms.is_finite());
            // The windowed online estimators degrade gracefully, not
            // catastrophically, relative to the whole-trace solve.
            assert!(
                p.error_ms <= cmp.offline_error_ms * 4.0 + 5.0,
                "online err {} vs offline {}",
                p.error_ms,
                cmp.offline_error_ms
            );
        }
        assert!(render_online(&cmp).contains("Online sink service"));
    }

    #[test]
    fn table1_and_delay_map_render() {
        assert!(table1(Scenario::smoke(98)).contains("Table I"));
        let map = delay_map(Scenario::smoke(99));
        assert!(map.contains("Fig 1"));
        assert!(map.lines().count() > 5);
    }
}
