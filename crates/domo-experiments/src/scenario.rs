//! Experiment scenarios: a network configuration plus reconstruction
//! settings plus evaluation controls.
//!
//! The paper evaluates on 100/225/400-node TOSSIM networks. We keep the
//! same node counts but scale the trace *duration* so every figure
//! regenerates in minutes on a laptop; the reconstruction behaviour is
//! governed by traffic density and topology, not wall-clock length, so
//! the shapes are preserved (see EXPERIMENTS.md). Bounds are evaluated
//! on a deterministic sample of the unknowns for the same reason.

use domo_baselines::MntConfig;
use domo_core::{Bounds, BoundsConfig, Domo, Estimates, EstimatorConfig};
use domo_net::{run_simulation, NetworkConfig, NetworkTrace};
use domo_util::rng::Xoshiro256pp;
use domo_util::time::SimDuration;

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Network/simulation configuration.
    pub net: NetworkConfig,
    /// Estimator configuration.
    pub estimator: EstimatorConfig,
    /// Bound-solver configuration.
    pub bounds: BoundsConfig,
    /// MNT baseline configuration.
    pub mnt: MntConfig,
    /// Extra fraction of delivered packets removed from the trace before
    /// analysis (the paper's loss experiment), `0.0` for none.
    pub extra_loss: f64,
    /// Max number of unknowns bounds are computed for (deterministically
    /// sampled); `usize::MAX` for all.
    pub bound_sample: usize,
}

impl Scenario {
    /// The paper's evaluation network at `num_nodes ∈ {100, 225, 400}`,
    /// duration scaled for tractable regeneration.
    pub fn paper(num_nodes: usize, seed: u64) -> Self {
        let mut net = NetworkConfig::paper_scale(num_nodes, seed);
        // Keep roughly 1.5–2k packets per run across scales.
        net.duration = match num_nodes {
            n if n <= 100 => SimDuration::from_secs(320),
            n if n <= 225 => SimDuration::from_secs(150),
            _ => SimDuration::from_secs(90),
        };
        Self {
            name: format!("paper-{num_nodes}"),
            net,
            estimator: EstimatorConfig::default(),
            bounds: BoundsConfig::default(),
            mnt: MntConfig::default(),
            extra_loss: 0.0,
            bound_sample: 200,
        }
    }

    /// A fast, small scenario for tests and smoke runs.
    pub fn smoke(seed: u64) -> Self {
        Self {
            name: "smoke".into(),
            net: NetworkConfig::small(25, seed),
            estimator: EstimatorConfig::default(),
            bounds: BoundsConfig::default(),
            mnt: MntConfig::default(),
            extra_loss: 0.0,
            bound_sample: 60,
        }
    }

    /// Divides the scenario's duration and sampling by `factor` (the
    /// `--fast` switch of the harness).
    pub fn scaled_down(mut self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        let us = self.net.duration.as_micros() / factor;
        self.net.duration = SimDuration::from_micros(us.max(10_000_000));
        self.bound_sample = (self.bound_sample / factor as usize).max(20);
        self
    }
}

/// Everything one scenario run produces.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The simulated trace (after any extra loss was applied).
    pub trace: NetworkTrace,
    /// The Domo analyzer built over the trace.
    pub domo: Domo,
    /// Domo's estimated values.
    pub estimates: Estimates,
    /// Wall-clock seconds spent in the estimator.
    pub estimate_seconds: f64,
}

impl ScenarioRun {
    /// Simulates the network, applies extra loss, and runs the
    /// estimator.
    pub fn execute(scenario: Scenario) -> Self {
        let full_trace = run_simulation(&scenario.net);
        let trace = if scenario.extra_loss > 0.0 {
            let mut rng = Xoshiro256pp::seed_from_u64(scenario.net.seed ^ 0xD0D0);
            full_trace.with_extra_loss(scenario.extra_loss, &mut rng)
        } else {
            full_trace
        };
        let domo = Domo::from_trace(&trace);
        let start = std::time::Instant::now();
        let estimates = domo.estimate(&scenario.estimator);
        let estimate_seconds = start.elapsed().as_secs_f64();
        Self {
            scenario,
            trace,
            domo,
            estimates,
            estimate_seconds,
        }
    }

    /// The deterministic bound-target sample for this run.
    pub fn bound_targets(&self) -> Vec<usize> {
        let n = self.domo.view().num_vars();
        let want = self.scenario.bound_sample.min(n);
        if want == 0 || n == 0 {
            return Vec::new();
        }
        let step = (n / want).max(1);
        (0..n).step_by(step).take(want).collect()
    }

    /// Runs the bound solver on the sampled targets, returning the
    /// bounds and the wall-clock seconds spent.
    pub fn run_bounds(&self) -> (Bounds, f64) {
        let targets = self.bound_targets();
        let start = std::time::Instant::now();
        let bounds = self.domo.bounds(&self.scenario.bounds, &targets);
        (bounds, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_executes_end_to_end() {
        let run = ScenarioRun::execute(Scenario::smoke(91));
        assert!(run.trace.stats.delivered > 50);
        assert!(run.estimates.times_ms.iter().all(|t| t.is_some()));
        assert!(run.estimate_seconds >= 0.0);
        let targets = run.bound_targets();
        assert!(!targets.is_empty());
        assert!(targets.len() <= 60);
    }

    #[test]
    fn extra_loss_shrinks_trace() {
        let mut s = Scenario::smoke(92);
        s.extra_loss = 0.3;
        let lossy = ScenarioRun::execute(s);
        let clean = ScenarioRun::execute(Scenario::smoke(92));
        assert!(lossy.trace.packets.len() < clean.trace.packets.len());
    }

    #[test]
    fn scaled_down_reduces_duration() {
        let s = Scenario::paper(100, 1).scaled_down(2);
        assert_eq!(s.net.duration, SimDuration::from_secs(160));
        assert_eq!(s.bound_sample, 100);
        // Never shrinks below the 10-second floor.
        let tiny = Scenario::paper(100, 1).scaled_down(1000);
        assert_eq!(tiny.net.duration, SimDuration::from_secs(10));
    }

    #[test]
    fn paper_scenarios_have_expected_sizes() {
        for n in [100, 225, 400] {
            let s = Scenario::paper(n, 1);
            assert_eq!(s.net.num_nodes, n);
            assert!(s.net.validate().is_ok());
        }
    }
}
