//! The experiment harness reproducing the Domo paper's evaluation.
//!
//! Every table and figure of §VI maps to a function in [`figures`]; the
//! `domo-exp` binary drives them from the command line. [`scenario`]
//! defines the simulated deployments (node counts match the paper;
//! durations are scaled for laptop-friendly regeneration — see
//! DESIGN.md) and [`metrics`] holds the scoring shared across
//! experiments.
//!
//! # Examples
//!
//! ```no_run
//! use domo_experiments::{figures, scenario::Scenario};
//!
//! let eval = figures::evaluate(Scenario::smoke(1));
//! println!("{}", eval.render_accuracy());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod metrics;
pub mod scenario;

pub use figures::{evaluate, Evaluation};
pub use scenario::{Scenario, ScenarioRun};
