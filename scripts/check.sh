#!/usr/bin/env bash
# Repo-wide quality gate. Run from the repository root:
#
#     scripts/check.sh
#
# Gates, in order:
#   1. formatting        cargo fmt --all --check
#   2. lints             clippy with -D warnings on every target, plus a
#                        stricter pass over library code only that also
#                        denies unwrap()/expect() — panics in the
#                        reconstruction pipeline must be typed errors or
#                        documented invariant panics (tests may unwrap)
#   3. tier-1 tests      release build + the facade crate's test binaries
#   4. e2e smoke         domo-sink serve/replay/query over loopback TCP
#                        (exits nonzero unless every delivered packet is
#                        reconstructed and garbage frames are counted),
#                        plus the ingestion-throughput bench, which
#                        synthesizes a 100K-packet steady-state
#                        workload, gates batched ingest at ≥10% of
#                        decode throughput at 4 shards and ≥80% of the
#                        committed BENCH_sink.json, then refreshes it
#   5. estimator bench   domo-exp bench: fails if single-thread window
#                        throughput regressed >20% vs the committed
#                        BENCH_estimator.json, then refreshes the file
#   6. print hygiene     library crates must route diagnostics through
#                        domo-obs events, not println!/eprintln! (binaries
#                        under src/bin/ are exempt; comments ignored)
#   7. metrics overhead  domo-exp obsbench: compares estimator throughput
#                        with the recorder enabled vs disabled, fails if
#                        the disabled path costs >5%, refreshes
#                        BENCH_obs.json
#   8. crash recovery    domo-sink crashsmoke: spawns a durable serve
#                        child, SIGKILLs it mid-ingest, restarts it on
#                        the same data dir, and fails unless the
#                        recovered RANGE/PACKET state matches an
#                        uninterrupted run bit-for-bit with no
#                        double-emitted results
#   9. store bench       domo-exp storebench: fails if WAL append
#                        throughput at the default fsync interval policy
#                        regressed >20% vs the committed
#                        BENCH_store.json, then refreshes the file
#  10. chaos soak        domo-exp chaos --quick: spawns a durable serve
#                        child with an injected I/O fault storm plus a
#                        shard-worker panic, and fails unless the sink
#                        survives, degrades and heals without losing a
#                        packet, and recovers bit-identically after a
#                        SIGKILL
#  11. live queries      domo-sink subsmoke: live SUBSCRIBE streams must
#                        be exactly-once across a CHECKPOINT, a
#                        disconnect + REPLAY reconnect, and a NODE
#                        filter, and AGG quantiles must sit within the
#                        documented sketch error bound of an offline
#                        exact computation; then domo-exp querybench
#                        gates fan-out throughput vs the committed
#                        BENCH_query.json and refreshes the file
#  12. connection soak   domo-sink connsoak: 1000+ concurrent replay
#                        connections against one reactor-backed server;
#                        fails unless every packet is accounted for
#                        exactly (emitted + dropped == ingested, zero
#                        quarantine) and the --max-conns cap sheds
#                        over-cap connections as counted structured
#                        refusals
#  13. trace overhead    domo-exp tracebench: per-packet journey tracing
#                        must cost <=1% disabled and <=5% sampled at
#                        1/256, a fault-induced degrade must leave a
#                        parseable flight-*.jsonl post-mortem containing
#                        the triggering event, and the tracing-off
#                        pipeline throughput must sit within 20% of the
#                        committed BENCH_obs.json trace section, which
#                        it then refreshes
#  14. cluster           domo-exp clustersmoke: a 3-member × 2-tenant
#                        cluster of serve children must survive a
#                        mid-replay SIGKILL of its busiest member with
#                        exactly one failover, zero duplicates, and
#                        per-tenant reconstructions bit-identical to a
#                        single-process reference of the same
#                        placement; then domo-exp clusterbench gates
#                        router fan-out throughput at 1/2/4 members vs
#                        the committed BENCH_cluster.json and
#                        refreshes the file
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy --workspace --lib (deny unwrap/expect in library code)"
cargo clippy --workspace --lib -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> cargo build --release --workspace"
# --workspace matters: the root manifest is both the workspace and the
# `domo` facade package, so a bare `cargo build` only builds the facade
# and the smoke/crashsmoke/chaos gates below would run stale (or
# missing) release binaries.
cargo build --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> domo-sink smoke (end-to-end over loopback TCP)"
./target/release/domo-sink smoke --nodes 9 --seed 7

echo "==> domo-sink bench (gates on BENCH_sink.json, then refreshes it)"
./target/release/domo-sink bench --nodes 16 --seed 7 --baseline BENCH_sink.json

echo "==> domo-exp bench (gates on BENCH_estimator.json, then refreshes it)"
./target/release/domo-exp bench --baseline BENCH_estimator.json

echo "==> print hygiene (library code must use domo-obs events)"
# Scan library sources only: everything under crates/*/src except the
# src/bin/ binaries. The bench and proptests helper crates are outside
# the workspace and exempt. Comment-only lines (e.g. doc examples that
# mention println!) are ignored.
viol="$(grep -rn --include='*.rs' -E '\b(println|eprintln)!' crates/*/src \
    | grep -v '/src/bin/' \
    | grep -v '^crates/bench/' \
    | grep -v '^crates/proptests/' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' \
    || true)"
if [ -n "$viol" ]; then
    echo "library code must emit domo-obs events, not println!/eprintln!:" >&2
    echo "$viol" >&2
    exit 1
fi

echo "==> domo-exp obsbench (metrics overhead gate, writes BENCH_obs.json)"
./target/release/domo-exp obsbench --max-delta 5

echo "==> domo-sink crashsmoke (SIGKILL + recovery over loopback TCP)"
./target/release/domo-sink crashsmoke --nodes 9 --seed 7

echo "==> domo-exp storebench (gates on BENCH_store.json, then refreshes it)"
./target/release/domo-exp storebench --baseline BENCH_store.json

echo "==> domo-exp chaos --quick (fault-storm survival soak)"
./target/release/domo-exp chaos --quick

echo "==> domo-sink subsmoke (exactly-once live subscriptions + AGG accuracy)"
./target/release/domo-sink subsmoke --nodes 16 --seed 7

echo "==> domo-exp querybench (gates on BENCH_query.json, then refreshes it)"
./target/release/domo-exp querybench --baseline BENCH_query.json

echo "==> domo-sink connsoak (1000+ concurrent connections, exact accounting)"
./target/release/domo-sink connsoak --nodes 16 --seed 7

echo "==> domo-exp tracebench (trace overhead + flight-dump gate, refreshes BENCH_obs.json)"
./target/release/domo-exp tracebench --baseline BENCH_obs.json

echo "==> domo-exp clustersmoke (3-member × 2-tenant failover, bit-identical recovery)"
./target/release/domo-exp clustersmoke --quick

echo "==> domo-exp clusterbench (gates on BENCH_cluster.json, then refreshes it)"
./target/release/domo-exp clusterbench --baseline BENCH_cluster.json

echo "All checks passed."
