#!/usr/bin/env bash
# Repo-wide quality gate. Run from the repository root:
#
#     scripts/check.sh
#
# Gates, in order:
#   1. formatting        cargo fmt --all --check
#   2. lints             clippy with -D warnings on every target, plus a
#                        stricter pass over library code only that also
#                        denies unwrap()/expect() — panics in the
#                        reconstruction pipeline must be typed errors or
#                        documented invariant panics (tests may unwrap)
#   3. tier-1 tests      release build + the facade crate's test binaries
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy --workspace --lib (deny unwrap/expect in library code)"
cargo clippy --workspace --lib -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "All checks passed."
