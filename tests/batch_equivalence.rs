//! Property: batched ingest is observationally identical to per-packet
//! ingest. For *any* partition of a workload into batches,
//! `ingest_batch` must produce bit-identical reconstructions, equal
//! accounting, the same journal bytes, and the same dedup set as a
//! loop of `ingest` calls over the same records — including duplicate
//! pids that straddle batch boundaries and a durability failure that
//! lands mid-batch.
//!
//! The workload is a simulated trace concatenated with itself, so
//! every run carries one duplicate of every pid; the partitions below
//! put the duplicate in the same batch as the original (whole-trace
//! batch), in a different batch (halves, random sizes), and in its own
//! batch (singletons — the degenerate case where batching and the
//! per-record path coincide).

use domo::net::{run_simulation, CollectedPacket, NetworkConfig, PacketId};
use domo::sink::service::{SinkConfig, SinkService, SinkStatsSnapshot};
use domo::sink::StoreConfig;
use domo::store::{FaultPlan, FsyncPolicy};
use domo::util::rng::Xoshiro256pp;
use std::path::{Path, PathBuf};

fn workload() -> (Vec<CollectedPacket>, Vec<PacketId>) {
    let trace = run_simulation(&NetworkConfig::small(12, 1702));
    assert!(!trace.packets.is_empty(), "trace delivered nothing");
    let mut w = trace.packets.clone();
    w.extend(trace.packets.iter().cloned());
    let pids = trace.packets.iter().map(|p| p.pid).collect();
    (w, pids)
}

/// Batch-size sequences, each summing to `n`: one batch, halves,
/// singletons, and four seeded random partitions.
fn partitions(n: usize) -> Vec<Vec<usize>> {
    let mut parts = vec![vec![n], vec![n / 2, n - n / 2], vec![1; n]];
    let mut rng = Xoshiro256pp::seed_from_u64(0xD0B0);
    for _ in 0..4 {
        let mut sizes = Vec::new();
        let mut left = n;
        while left > 0 {
            let s = (rng.range_u64(1..64) as usize).min(left);
            sizes.push(s);
            left -= s;
        }
        parts.push(sizes);
    }
    parts
}

/// Feeds `w` to `service` — per-record when `sizes` is `None`, else in
/// batches of the given sizes.
fn feed(service: &SinkService, w: &[CollectedPacket], sizes: Option<&[usize]>) {
    match sizes {
        None => {
            for p in w {
                service.ingest(p.clone());
            }
        }
        Some(sizes) => {
            let mut off = 0;
            for &s in sizes {
                service.ingest_batch(&w[off..off + s]);
                off += s;
            }
            assert_eq!(off, w.len(), "partition does not cover the workload");
        }
    }
}

/// One packet's reconstruction as exact hop-time bit patterns plus
/// path length (equality must be bit-identical, not approximate).
type ReconBits = Option<(Vec<u64>, usize)>;

/// Every reconstruction, in `pids` order.
fn reconstructions(service: &SinkService, pids: &[PacketId]) -> Vec<ReconBits> {
    pids.iter()
        .map(|pid| {
            service.reconstruction(*pid).map(|r| {
                let bits: Vec<u64> = r.hop_times_ms.iter().map(|t| t.to_bits()).collect();
                (bits, r.path.len())
            })
        })
        .collect()
}

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("domo-batch-equiv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// All files under `dir`, as sorted (relative-name, bytes) pairs.
fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    for entry in entries {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        if path.is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            out.push((name, std::fs::read(&path).expect("read wal file")));
        }
    }
    out.sort();
    out
}

#[test]
fn any_partition_matches_per_packet_ingest_volatile() {
    let (w, pids) = workload();
    let cfg = || SinkConfig {
        shards: 2,
        queue_capacity: 1 << 20,
        max_retained_packets: 1 << 20,
        ..SinkConfig::default()
    };

    let run = |sizes: Option<&[usize]>| -> (SinkStatsSnapshot, Vec<ReconBits>) {
        let service = SinkService::start(cfg());
        feed(&service, &w, sizes);
        service.drain();
        let stats = service.stats();
        let recon = reconstructions(&service, &pids);
        service.shutdown();
        (stats, recon)
    };

    let (ref_stats, ref_recon) = run(None);
    assert_eq!(ref_stats.ingested, pids.len() as u64, "dups must dedup");
    assert_eq!(ref_stats.quarantined, pids.len() as u64, "one dup per pid");
    assert_eq!(
        ref_stats.backpressure_dropped, 0,
        "queue bound must not bite"
    );
    assert!(
        ref_recon.iter().any(Option::is_some),
        "nothing reconstructed"
    );

    for sizes in partitions(w.len()) {
        let (stats, recon) = run(Some(&sizes));
        assert_eq!(
            stats,
            ref_stats,
            "stats diverged for partition {:?}…",
            &sizes[..sizes.len().min(8)]
        );
        assert_eq!(
            recon,
            ref_recon,
            "reconstructions diverged for partition {:?}…",
            &sizes[..sizes.len().min(8)]
        );
    }
}

#[test]
fn any_partition_writes_identical_journal_bytes() {
    let (w, pids) = workload();
    let durable_cfg = |dir: &Path| SinkConfig {
        shards: 1,
        queue_capacity: 1 << 20,
        max_retained_packets: 1 << 20,
        store: Some(StoreConfig {
            fsync: FsyncPolicy::Never,
            checkpoint_every: u64::MAX,
            probe_every: u64::MAX,
            ..StoreConfig::at(dir)
        }),
        ..SinkConfig::default()
    };

    let run = |tag: &str,
               sizes: Option<&[usize]>|
     -> (SinkStatsSnapshot, usize, Vec<(String, Vec<u8>)>) {
        let dir = scratch_root(tag);
        let service = SinkService::open(durable_cfg(&dir)).expect("open durable sink");
        feed(&service, &w, sizes);
        service.drain();
        let stats = service.stats();
        let dedup = service.store_status().expect("durable").dedup_pids;
        service.shutdown();
        let wal = dir_bytes(&dir.join("wal"));
        let _ = std::fs::remove_dir_all(&dir);
        (stats, dedup, wal)
    };

    let (ref_stats, ref_dedup, ref_wal) = run("ref", None);
    assert_eq!(
        ref_dedup,
        pids.len(),
        "journal dedup set holds each pid once"
    );
    assert!(
        ref_wal.iter().map(|(_, b)| b.len()).sum::<usize>() > 0,
        "empty journal"
    );

    for (i, sizes) in partitions(w.len()).into_iter().enumerate() {
        let tag = format!("part{i}");
        let (stats, dedup, wal) = run(&tag, Some(&sizes));
        assert_eq!(stats, ref_stats, "stats diverged for partition {i}");
        assert_eq!(dedup, ref_dedup, "dedup set diverged for partition {i}");
        assert_eq!(wal, ref_wal, "journal bytes diverged for partition {i}");
    }
}

#[test]
fn mid_batch_store_failure_matches_per_packet_semantics() {
    let (w, pids) = workload();
    // Durability dies permanently a couple dozen mutating ops in —
    // inside the WAL-append stream, so for every multi-record batch
    // partition the failure lands *mid-batch*. A huge estimator
    // high-water keeps result appends out of the ingest window, so the
    // fault-op sequence is exactly the WAL appends and deterministic
    // across runs.
    let failing_cfg = |dir: &Path| SinkConfig {
        shards: 1,
        queue_capacity: 1 << 20,
        max_retained_packets: 1 << 20,
        high_water: Some(1 << 20),
        store: Some(StoreConfig {
            fsync: FsyncPolicy::Never,
            checkpoint_every: u64::MAX,
            probe_every: u64::MAX,
            faults: Some(FaultPlan {
                eio: 1.0,
                fsync: 1.0,
                after_ops: 24,
                for_ops: 0, // forever: degraded for the rest of the run
                ..FaultPlan::default()
            }),
            ..StoreConfig::at(dir)
        }),
        ..SinkConfig::default()
    };

    let run = |tag: &str,
               sizes: Option<&[usize]>|
     -> (SinkStatsSnapshot, u64, Vec<(String, Vec<u8>)>) {
        let dir = scratch_root(tag);
        let service = SinkService::open(failing_cfg(&dir)).expect("fault window starts post-open");
        feed(&service, &w, sizes);
        // Capture the degradation ledger before drain: the flush that
        // drain triggers fails too (backlogging results), but that is
        // emission-side and not under test here.
        let unjournaled = service.health_status().unjournaled;
        let stats = service.stats();
        service.drain();
        service.shutdown();
        let wal = dir_bytes(&dir.join("wal"));
        let _ = std::fs::remove_dir_all(&dir);
        (stats, unjournaled, wal)
    };

    let (ref_stats, ref_unjournaled, ref_wal) = run("fault-ref", None);
    assert_eq!(
        ref_stats.ingested,
        pids.len() as u64,
        "degradation must not reject"
    );
    assert!(
        ref_unjournaled > 0 && ref_unjournaled < pids.len() as u64,
        "failure must land mid-stream: {ref_unjournaled} of {}",
        pids.len()
    );

    for (i, sizes) in partitions(w.len()).into_iter().enumerate() {
        let tag = format!("fault{i}");
        let (stats, unjournaled, wal) = run(&tag, Some(&sizes));
        assert_eq!(stats, ref_stats, "stats diverged for partition {i}");
        assert_eq!(
            unjournaled, ref_unjournaled,
            "degraded-mode ledger diverged for partition {i}"
        );
        assert_eq!(wal, ref_wal, "journaled prefix diverged for partition {i}");
    }
}
