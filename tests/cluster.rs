//! Acceptance for the coordinator-free cluster layer (DESIGN.md §17):
//! the consistent-hash ring must place every `(tenant, subtree-root)`
//! key identically everywhere, the tenant-aware wire version must
//! round-trip through a live server, the router must partition a
//! 2-tenant workload across live members exactly along ring ownership,
//! and scatter-gather queries must merge the members' answers
//! losslessly.

use domo::cluster::{namespace_node, split_node, tenant_of, Ring};
use domo::net::{run_simulation, CollectedPacket, NetworkConfig, NodeId};
use domo::sink::client::QueryClient;
use domo::sink::route::{cluster_range, cluster_stats, route_packets, RouteOptions};
use domo::sink::server::SinkServer;
use domo::sink::service::SinkConfig;
use domo::sink::StoreConfig;
use std::time::{Duration, Instant};

/// The simulated trace re-homed into `tenant`'s namespace (the shared
/// sink node 0 stays node 0).
fn namespaced(packets: &[CollectedPacket], tenant: u16) -> Vec<CollectedPacket> {
    let map = |n: NodeId| {
        NodeId::new(namespace_node(tenant, n.index() as u16).expect("node fits the tenant stride"))
    };
    packets
        .iter()
        .map(|p| {
            let mut q = p.clone();
            q.pid.origin = map(q.pid.origin);
            for n in &mut q.path {
                *n = map(*n);
            }
            q
        })
        .collect()
}

/// The ring key of a packet: its tenant and tenant-local subtree root.
fn key_of(p: &CollectedPacket) -> (u16, u16) {
    let root = p.subtree_root().expect("delivered packets have a root");
    split_node(root.index() as u16)
}

/// Live members; `durable` adds a result store (scatter-gather RANGE
/// scans it) under a scratch dir the caller removes.
fn member_servers(n: usize, durable: Option<&std::path::Path>) -> Vec<SinkServer> {
    (0..n)
        .map(|i| {
            SinkServer::bind(
                "127.0.0.1:0",
                "127.0.0.1:0",
                SinkConfig {
                    shards: 1,
                    cluster_role: "member".into(),
                    store: durable.map(|base| StoreConfig::at(base.join(format!("member-{i}")))),
                    ..SinkConfig::default()
                },
            )
            .expect("bind member")
        })
        .collect()
}

fn await_ingested(servers: &[SinkServer], want: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let got: u64 = servers.iter().map(|s| s.service().stats().ingested).sum();
        if got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "cluster ingest stalled at {got}/{want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn router_partitions_tenants_along_ring_ownership() {
    let trace = run_simulation(&NetworkConfig::small(9, 4171));
    assert!(!trace.packets.is_empty(), "trace delivered nothing");

    // Two tenants, same underlying trace, interleaved.
    let t1 = namespaced(&trace.packets, 1);
    let t2 = namespaced(&trace.packets, 2);
    let mut workload = Vec::with_capacity(t1.len() * 2);
    for (a, b) in t1.iter().zip(&t2) {
        workload.push(a.clone());
        workload.push(b.clone());
    }

    let scratch = std::env::temp_dir().join(format!("domo-cluster-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let servers = member_servers(3, Some(&scratch));
    let ingest: Vec<String> = servers
        .iter()
        .map(|s| s.ingest_addr().to_string())
        .collect();
    let report = route_packets(ingest.clone(), &workload, RouteOptions::default()).expect("route");
    assert_eq!(report.forwarded, workload.len() as u64);
    assert_eq!(report.failovers, 0);
    assert_eq!(report.spool_dropped, 0);
    await_ingested(&servers, workload.len() as u64);

    // Per-member landings must equal ring ownership exactly — the same
    // pure function every other router in the deployment computes.
    let ring = Ring::new(ingest.clone());
    for (i, server) in servers.iter().enumerate() {
        let want = workload
            .iter()
            .filter(|p| {
                let (t, r) = key_of(p);
                ring.owner(t, r) == Some(ingest[i].as_str())
            })
            .count() as u64;
        assert_eq!(
            server.service().stats().ingested,
            want,
            "member {i} landed off-ring records"
        );
        // No cross-tenant bleed: each member's dedup set is keyed by
        // namespaced pids, so both tenants account independently.
        let tenants = server.service().tenants();
        let landed: u64 = tenants.iter().map(|&(_, n)| n).sum();
        assert_eq!(landed, want, "member {i} tenant accounting drifted");
    }

    // Scatter-gather STATS sums the counters across the live members.
    let queries: Vec<String> = servers.iter().map(|s| s.query_addr().to_string()).collect();
    let (stats, gather) = cluster_stats(&queries).expect("cluster stats");
    assert!(
        gather.missed.is_empty(),
        "missed members: {:?}",
        gather.missed
    );
    let ingested = stats
        .iter()
        .find(|(name, _)| name == "ingested")
        .map(|&(_, v)| v);
    assert_eq!(ingested, Some(workload.len() as u64));

    // Scatter-gather RANGE returns every reconstruction exactly once,
    // and each line's pid still names its tenant. Emission into the
    // result log is asynchronous behind the drain barrier, so poll.
    let deadline = Instant::now() + Duration::from_secs(60);
    let lines = loop {
        for s in &servers {
            s.service().drain();
        }
        let (lines, gather) =
            cluster_range(&queries, f64::NEG_INFINITY, f64::INFINITY).expect("cluster range");
        assert!(gather.missed.is_empty());
        assert!(lines.len() <= workload.len(), "double-emitted records");
        if lines.len() == workload.len() {
            break lines;
        }
        assert!(Instant::now() < deadline, "cluster RANGE stalled");
        std::thread::sleep(Duration::from_millis(10));
    };
    let by_tenant = |t: u16| {
        lines
            .iter()
            .filter(|l| {
                let pid = l.split_whitespace().nth(1).expect("pid token");
                let origin: u16 = pid
                    .strip_prefix('n')
                    .and_then(|rest| rest.split('#').next())
                    .and_then(|o| o.parse().ok())
                    .expect("pid origin");
                tenant_of(origin) == t
            })
            .count()
    };
    assert_eq!(by_tenant(1), t1.len());
    assert_eq!(by_tenant(2), t2.len());

    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn tenant_wire_version_round_trips_through_a_live_member() {
    let trace = run_simulation(&NetworkConfig::small(9, 4172));
    let tenant = 3u16;
    let packets = namespaced(&trace.packets, tenant);

    let servers = member_servers(1, None);
    // The v2 encoder carries `(tenant, local ids)` on the wire; the
    // decoder re-derives the internal ids, so what the member stores is
    // exactly the namespaced packet set.
    let mut frame = Vec::new();
    let mut encoded = Vec::new();
    for p in &trace.packets {
        frame.clear();
        domo::sink::wire::encode_packet_v2(p, tenant, &mut frame).expect("encode v2");
        encoded.extend_from_slice(&frame);
    }
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(servers[0].ingest_addr()).expect("connect");
    stream.write_all(&encoded).expect("send v2 frames");
    drop(stream);
    await_ingested(&servers, packets.len() as u64);

    let tenants = servers[0].service().tenants();
    assert_eq!(tenants, vec![(tenant, packets.len() as u64)]);

    // ERR unknown-tenant is a structured reply, counted as a query
    // error, not a dropped connection.
    let mut q = QueryClient::connect(servers[0].query_addr()).expect("query connect");
    let reply = q.request("TENANTS 9").expect("tenants query");
    assert_eq!(reply, vec!["ERR unknown-tenant".to_string()]);
    let metrics = q.request("METRICS").expect("metrics");
    let errors: f64 = metrics
        .iter()
        .find_map(|l| l.strip_prefix("domo_sink_query_errors_total "))
        .and_then(|v| v.parse().ok())
        .expect("query error counter exposed");
    assert!(errors >= 1.0, "unknown-tenant must count as a query error");

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn ring_placement_is_identical_across_independent_routers() {
    let members = ["10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"];
    let a = Ring::new(members);
    let b = Ring::new(members);
    let trace = run_simulation(&NetworkConfig::small(16, 4173));
    for tenant in [0u16, 1, 5] {
        for p in namespaced(&trace.packets, tenant) {
            let (t, r) = key_of(&p);
            assert_eq!(a.owner(t, r), b.owner(t, r));
        }
    }

    // Losing a member only moves the dead member's keys (consistent
    // hashing's minimal-movement property, the basis of §17.5's
    // exactly-once failover argument).
    let mut healed = Ring::new(members);
    healed.remove_member(members[1]);
    for p in namespaced(&trace.packets, 1) {
        let (t, r) = key_of(&p);
        let before = a.owner(t, r).expect("owner");
        let after = healed.owner(t, r).expect("owner");
        if before != members[1] {
            assert_eq!(before, after, "a surviving member's key moved");
        } else {
            assert_ne!(after, members[1]);
        }
    }
}
