//! Cross-crate invariants: the constraint systems domo-core builds from
//! domo-net traces must hold at the simulator's ground truth, across
//! seeds and network shapes.

use domo::core::{build_constraints, propagate, ConstraintKind, ConstraintOptions, TraceView};
use domo::prelude::*;

fn truth_point(trace: &NetworkTrace, view: &TraceView) -> Vec<f64> {
    view.vars()
        .iter()
        .map(|hr| trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64())
        .collect()
}

#[test]
fn guaranteed_constraints_hold_at_truth_across_seeds() {
    for seed in [1u64, 2, 3, 4, 5] {
        let trace = run_simulation(&NetworkConfig::small(16, seed));
        let view = TraceView::new(trace.packets.clone());
        let opts = ConstraintOptions::default();
        let intervals = propagate(&view, opts.omega_ms, opts.propagation_rounds);
        let subset: Vec<usize> = (0..view.num_packets()).collect();
        let system = build_constraints(&view, &subset, &intervals, &opts);
        let x = truth_point(&trace, &view);
        for row in &system.rows {
            if row.kind == ConstraintKind::SumUpper {
                continue; // loss-sensitive by design
            }
            let val = row.expr.eval(&x);
            assert!(
                val >= row.lo - 1e-6 && val <= row.hi + 1e-6,
                "seed {seed}: {:?} violated at truth ({val} ∉ [{}, {}])",
                row.kind,
                row.lo,
                row.hi
            );
        }
    }
}

#[test]
fn interval_propagation_is_sound_across_shapes() {
    for (nodes, seed) in [(9usize, 11u64), (16, 12), (25, 13), (36, 14)] {
        let trace = run_simulation(&NetworkConfig::small(nodes, seed));
        let view = TraceView::new(trace.packets.clone());
        let intervals = propagate(&view, 0.5, 4);
        let x = truth_point(&trace, &view);
        for (v, &t) in x.iter().enumerate() {
            assert!(
                t >= intervals.lb[v] - 1e-6 && t <= intervals.ub[v] + 1e-6,
                "{nodes} nodes seed {seed}: truth escaped interval"
            );
        }
    }
}

#[test]
fn candidate_sets_certain_subset_of_possible() {
    let trace = run_simulation(&NetworkConfig::small(25, 21));
    let view = TraceView::new(trace.packets.clone());
    let mut any = false;
    for p in 0..view.num_packets() {
        if let Some(sets) = view.candidate_sets(p) {
            for c in &sets.certain {
                assert!(sets.possible.contains(c), "C*(p) must be a subset of C(p)");
            }
            any = true;
        }
    }
    assert!(any, "trace must produce candidate sets");
}

#[test]
fn sum_field_brackets_hold_semantically() {
    // S(p) (the on-air field) must cover the packet's own first-hop
    // sojourn and at most the total sojourn the source spent on all
    // traffic between the anchor packets — checked against ground truth.
    let trace = run_simulation(&NetworkConfig::small(16, 31));
    let view = TraceView::new(trace.packets.clone());
    let mut checked = 0;
    for p in 0..view.num_packets() {
        let Some(sets) = view.candidate_sets(p) else {
            continue;
        };
        let packet = view.packet(p);
        let truth = trace.truth(packet.pid).unwrap();
        let own = (truth[1] - truth[0]).as_millis_f64();
        let s = f64::from(packet.sum_of_delays_ms);
        assert!(s >= own - 1.5, "S(p) must include the first-hop sojourn");
        // Guaranteed candidates' delays fit under S(p).
        let mut certain_sum = own;
        for &(x, hop) in &sets.certain {
            let tx = trace.truth(view.packet(x).pid).unwrap();
            certain_sum += (tx[hop + 1] - tx[hop]).as_millis_f64();
        }
        assert!(
            certain_sum <= s + 2.5,
            "C* sum {certain_sum:.2} exceeds S(p)+slack {s}"
        );
        checked += 1;
    }
    assert!(checked > 20, "need enough anchored packets, got {checked}");
}

#[test]
fn fifo_order_decided_pairs_match_truth() {
    use domo::core::interval::decided_order;
    let trace = run_simulation(&NetworkConfig::small(16, 41));
    let view = TraceView::new(trace.packets.clone());
    let intervals = propagate(&view, 1.0, 3);
    let mut decided = 0;
    for node in view.forwarding_nodes().collect::<Vec<_>>() {
        let entries = view.passthroughs(node);
        for (i, &x) in entries.iter().enumerate() {
            for &y in entries.iter().skip(i + 1) {
                if let Some(x_first) = decided_order(&view, &intervals, x, y) {
                    let tx = trace.truth(view.packet(x.0).pid).unwrap()[x.1];
                    let ty = trace.truth(view.packet(y.0).pid).unwrap()[y.1];
                    assert_eq!(
                        x_first,
                        tx < ty,
                        "oracle decided the wrong order at node {node}"
                    );
                    decided += 1;
                }
            }
        }
    }
    assert!(
        decided > 100,
        "oracle must decide plenty of pairs: {decided}"
    );
}
