//! Full-pipeline robustness: simulate → inject faults → sanitize →
//! estimate → bounds, across every fault class at aggressive rates.
//!
//! These tests assert three things the fault-injection work promises:
//! the pipeline never panics no matter what the network delivers,
//! quarantined records are surfaced through [`SystemDiagnostics`],
//! and on a clean trace the sanitized pipeline is bit-identical to
//! the as-is pipeline.

use domo::core::{ConstraintOptions, SanitizeConfig};
use domo::net::FaultConfig;
use domo::prelude::*;

fn bound_targets(domo: &Domo, want: usize) -> Vec<usize> {
    let n = domo.view().num_vars();
    let want = want.min(n);
    if want == 0 {
        return Vec::new();
    }
    (0..n).step_by((n / want).max(1)).take(want).collect()
}

/// Runs the sanitized pipeline end to end and checks the outputs are
/// well-formed (everything committed, everything finite, lb ≤ ub).
fn assert_pipeline_survives(trace: &NetworkTrace, label: &str) -> Domo {
    let domo = Domo::sanitized_from_trace(trace, &SanitizeConfig::default());
    let est = domo
        .try_estimate(&EstimatorConfig::default())
        .unwrap_or_else(|e| panic!("{label}: estimator rejected config: {e}"));
    for v in 0..domo.view().num_vars() {
        let t = est
            .time_of(v)
            .unwrap_or_else(|| panic!("{label}: var {v} not committed"));
        assert!(t.is_finite(), "{label}: var {v} estimate not finite");
    }
    let targets = bound_targets(&domo, 6);
    let b = domo
        .try_bounds(&BoundsConfig::default(), &targets)
        .unwrap_or_else(|e| panic!("{label}: bounds rejected inputs: {e}"));
    for &t in &targets {
        if let Some((lo, hi)) = b.of(t) {
            assert!(
                lo.is_finite() && hi.is_finite() && lo <= hi + 1e-9,
                "{label}: bad bracket [{lo}, {hi}] for var {t}"
            );
        }
    }
    domo
}

#[test]
fn all_fault_classes_at_aggressive_rates_never_panic() {
    let mut cfg = NetworkConfig::small(16, 77);
    cfg.faults = Some(FaultConfig::all(0.25, 0xBAD));
    let trace = run_simulation(&cfg);
    assert!(!trace.packets.is_empty(), "faulty net must still deliver");

    let domo = assert_pipeline_survives(&trace, "all-faults");
    assert!(
        !domo.quarantine().is_empty(),
        "aggressive corruption must quarantine some records"
    );
    // The quarantine count is surfaced through the diagnostics report.
    let diag = domo.diagnostics(&ConstraintOptions::default());
    assert_eq!(diag.quarantined_packets, domo.quarantine().len());
    assert!(diag.render().contains("quarantined"));
}

#[test]
fn each_fault_class_individually_survives_the_pipeline() {
    let quiet = FaultConfig {
        seed: 0xF0F0,
        ..FaultConfig::default()
    };
    let classes: Vec<(&str, FaultConfig)> = vec![
        (
            "drop",
            FaultConfig {
                drop_rate: 0.3,
                ..quiet
            },
        ),
        (
            "burst-drop",
            FaultConfig {
                burst_drop_rate: 0.1,
                burst_len: 4,
                ..quiet
            },
        ),
        (
            "duplicate",
            FaultConfig {
                duplicate_rate: 0.3,
                ..quiet
            },
        ),
        (
            "reorder",
            FaultConfig {
                reorder_rate: 0.3,
                ..quiet
            },
        ),
        (
            "corrupt-sum",
            FaultConfig {
                corrupt_sum_rate: 0.3,
                ..quiet
            },
        ),
        (
            "saturate",
            FaultConfig {
                saturate_rate: 0.3,
                ..quiet
            },
        ),
        (
            "clock-jump",
            FaultConfig {
                clock_jump_rate: 0.3,
                clock_jump_ms: 5000,
                ..quiet
            },
        ),
        (
            "reboot",
            FaultConfig {
                reboot_rate: 0.3,
                ..quiet
            },
        ),
        (
            "truncate-path",
            FaultConfig {
                truncate_path_rate: 0.3,
                ..quiet
            },
        ),
    ];
    for (label, faults) in classes {
        let mut cfg = NetworkConfig::small(9, 901);
        cfg.faults = Some(faults);
        let trace = run_simulation(&cfg);
        assert_pipeline_survives(&trace, label);
    }
}

#[test]
fn clean_trace_pipeline_is_bit_identical_to_unsanitized() {
    let trace = run_simulation(&NetworkConfig::small(16, 78));
    let asis = Domo::from_trace(&trace);
    let sanitized = Domo::sanitized_from_trace(&trace, &SanitizeConfig::default());
    assert!(sanitized.quarantine().is_empty(), "clean trace, no rejects");
    assert_eq!(asis.view().num_vars(), sanitized.view().num_vars());

    let cfg = EstimatorConfig::default();
    let est_a = asis.estimate(&cfg);
    let est_b = sanitized.estimate(&cfg);
    for v in 0..asis.view().num_vars() {
        assert_eq!(
            est_a.time_of(v),
            est_b.time_of(v),
            "estimate for var {v} must be bit-identical"
        );
    }

    let targets = bound_targets(&asis, 8);
    let b_a = asis.bounds(&BoundsConfig::default(), &targets);
    let b_b = sanitized.bounds(&BoundsConfig::default(), &targets);
    for &t in &targets {
        assert_eq!(
            b_a.of(t),
            b_b.of(t),
            "bounds for var {t} must be bit-identical"
        );
    }
}
