//! Acceptance for the online sink service: replaying a simulated trace
//! through a *live TCP service* must reconstruct every delivered
//! packet, matching the in-process streaming estimator bit-for-bit
//! (same solver, same order), and the service must survive malformed
//! frames and queue saturation without panicking — reporting both in
//! its stats.

use domo::core::{EstimatorConfig, StreamingEstimator};
use domo::net::{run_simulation, NetworkConfig};
use domo::sink::client::{parse_stats, replay_packets, QueryClient, ReplayOptions};
use domo::sink::server::SinkServer;
use domo::sink::service::SinkConfig;
use std::time::{Duration, Instant};

/// Polls the service stats until `done` says so (ingest has no ack).
fn await_stats(server: &SinkServer, done: impl Fn(&domo::sink::SinkStatsSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if done(&server.service().stats()) {
            return;
        }
        assert!(Instant::now() < deadline, "ingest stalled");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn live_replay_matches_the_in_process_estimator() {
    let trace = run_simulation(&NetworkConfig::small(9, 4101));
    let delivered = trace.packets.len();
    assert!(delivered > 0, "trace delivered nothing");

    // One shard + in-order TCP delivery = the shard estimator sees the
    // exact packet sequence an in-process estimator would.
    let server = SinkServer::bind(
        "127.0.0.1:0",
        "127.0.0.1:0",
        SinkConfig {
            shards: 1,
            max_retained_packets: delivered,
            ..SinkConfig::default()
        },
    )
    .expect("bind");
    let report = replay_packets(
        server.ingest_addr(),
        &trace.packets,
        &ReplayOptions::default(),
    )
    .expect("replay");
    assert_eq!(report.frames, delivered);

    await_stats(&server, |s| s.ingested == delivered as u64);
    server.service().drain();

    // The reference: the same streaming pipeline, run in-process.
    let mut reference = StreamingEstimator::new(EstimatorConfig::default());
    let mut expected = Vec::new();
    for p in &trace.packets {
        expected.extend(reference.push(p.clone()));
    }
    expected.extend(reference.finish());
    assert_eq!(expected.len(), delivered);

    let stats = server.service().stats();
    assert_eq!(stats.emitted, delivered as u64, "not every packet emitted");
    assert_eq!(stats.backpressure_dropped, 0);
    for want in &expected {
        let got = server
            .service()
            .reconstruction(want.pid)
            .unwrap_or_else(|| panic!("no reconstruction for {:?}", want.pid));
        assert_eq!(got.hop_times_ms.len(), want.hop_times_ms.len());
        for (g, w) in got.hop_times_ms.iter().zip(&want.hop_times_ms) {
            assert!(
                (g - w).abs() < 1e-9,
                "hop time diverged for {:?}: {g} vs {w}",
                want.pid
            );
        }
    }

    // The same answer must be reachable over the query wire.
    let pid = expected[0].pid;
    let mut q = QueryClient::connect(server.query_addr()).expect("query connect");
    let lines = q
        .request(&format!("PACKET {} {}", pid.origin.index(), pid.seq))
        .expect("packet query");
    assert!(
        lines.first().is_some_and(|l| l.starts_with("packet ")),
        "bad reply {lines:?}"
    );
    server.shutdown();
}

#[test]
fn saturation_and_garbage_are_survived_and_reported() {
    let trace = run_simulation(&NetworkConfig::small(16, 4102));
    let delivered = trace.packets.len();
    assert!(delivered > 50, "need a flood, got {delivered} packets");

    // A 2-slot queue behind a worker that runs a solve every 4 packets:
    // the TCP flood lands in microseconds, each flush takes
    // milliseconds, so the drop-oldest path must engage.
    let server = SinkServer::bind(
        "127.0.0.1:0",
        "127.0.0.1:0",
        SinkConfig {
            shards: 1,
            queue_capacity: 2,
            high_water: Some(4),
            ..SinkConfig::default()
        },
    )
    .expect("bind");
    replay_packets(
        server.ingest_addr(),
        &trace.packets,
        &ReplayOptions {
            rate_pps: 0.0,
            garbage_frames: 4,
            ..ReplayOptions::default()
        },
    )
    .expect("replay");

    await_stats(&server, |s| {
        s.ingested == delivered as u64 && s.malformed_frames >= 1
    });
    server.service().drain();
    let stats = server.service().stats();
    assert!(stats.malformed_frames >= 1, "garbage not reported");
    assert!(
        stats.backpressure_dropped > 0,
        "flood through a 2-slot queue must drop: {stats:?}"
    );
    assert!(stats.emitted > 0, "overloaded service still makes progress");
    assert_eq!(
        stats.emitted + stats.backpressure_dropped,
        stats.ingested,
        "accounting must balance exactly"
    );

    // And the wire-level stats agree with the in-process view.
    let mut q = QueryClient::connect(server.query_addr()).expect("query connect");
    let wire_stats = parse_stats(&q.request("STATS").expect("stats"));
    let wire = |name: &str| {
        wire_stats
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert_eq!(wire("ingested"), stats.ingested);
    assert_eq!(wire("emitted"), stats.emitted);
    assert_eq!(wire("backpressure_dropped"), stats.backpressure_dropped);
    server.shutdown();
}
