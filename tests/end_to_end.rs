//! End-to-end integration: simulate → reconstruct → score, across the
//! whole workspace through the public facade.

use domo::baselines::{message_tracing, mnt};
use domo::core::TimeRef;
use domo::prelude::*;
use domo::util::stats::average_displacement;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn estimate_errors(trace: &NetworkTrace, domo: &Domo, est: &Estimates) -> Vec<f64> {
    let view = domo.view();
    view.vars()
        .iter()
        .enumerate()
        .map(|(var, hr)| {
            let truth = trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
            (est.time_of(var).unwrap() - truth).abs()
        })
        .collect()
}

#[test]
fn full_pipeline_reaches_paper_accuracy_regime() {
    let trace = run_simulation(&NetworkConfig::small(25, 1001));
    let domo = Domo::from_trace(&trace);
    let est = domo.estimate(&EstimatorConfig::default());
    let errors = estimate_errors(&trace, &domo, &est);
    let avg = mean(&errors);
    // Paper: 3.58 ms average, >70 % of errors under 4 ms. Allow slack
    // for a different substrate, but stay in the single-digit regime.
    assert!(avg < 8.0, "average error {avg:.2} ms out of regime");
    let under4 = errors.iter().filter(|&&e| e < 4.0).count() as f64 / errors.len() as f64;
    assert!(
        under4 > 0.5,
        "only {:.0}% of errors under 4 ms",
        under4 * 100.0
    );
}

#[test]
fn domo_beats_both_baselines_on_their_own_metric() {
    let trace = run_simulation(&NetworkConfig::small(25, 1002));
    let domo = Domo::from_trace(&trace);
    let view = domo.view();
    let est = domo.estimate(&EstimatorConfig::default());

    // vs MNT on estimated values.
    let mnt_res = mnt::run_mnt(&trace, view, &mnt::MntConfig::default());
    let domo_err = mean(&estimate_errors(&trace, &domo, &est));
    let mnt_err = {
        let v: Vec<f64> = view
            .vars()
            .iter()
            .enumerate()
            .map(|(var, hr)| {
                let truth =
                    trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
                (mnt_res.estimate[var] - truth).abs()
            })
            .collect();
        mean(&v)
    };
    assert!(domo_err < mnt_err, "Domo {domo_err:.2} vs MNT {mnt_err:.2}");

    // vs MessageTracing on event order.
    let truth_ord = message_tracing::truth_order(&trace, view);
    let domo_ord =
        message_tracing::order_by_estimates(view, |pi, hop| match view.time_ref(pi, hop) {
            TimeRef::Known(t) => Some(t),
            TimeRef::Var(v) => est.time_of(v),
        });
    let mt_ord = message_tracing::reconstruct_order(&trace, view);
    let d_domo = average_displacement(&truth_ord, &domo_ord).unwrap();
    let d_mt = average_displacement(&truth_ord, &mt_ord.order).unwrap();
    assert!(
        d_domo < d_mt,
        "Domo {d_domo:.3} vs MessageTracing {d_mt:.3}"
    );
}

#[test]
fn bounds_are_sound_and_tighter_than_mnt() {
    let trace = run_simulation(&NetworkConfig::small(16, 1003));
    let domo = Domo::from_trace(&trace);
    let view = domo.view();
    let targets: Vec<usize> = (0..view.num_vars()).step_by(4).collect();
    let bounds = domo.bounds(&BoundsConfig::default(), &targets);
    let mnt_res = mnt::run_mnt(&trace, view, &mnt::MntConfig::default());

    let mut domo_widths = Vec::new();
    let mut mnt_widths = Vec::new();
    let mut covered = 0;
    for &t in &targets {
        let (lo, hi) = bounds.of(t).unwrap();
        assert!(lo <= hi + 1e-6);
        domo_widths.push(hi - lo);
        mnt_widths.push(mnt_res.ub[t] - mnt_res.lb[t]);
        let hr = view.vars()[t];
        let truth = trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
        if truth >= lo - 0.5 && truth <= hi + 0.5 {
            covered += 1;
        }
    }
    assert!(
        covered as f64 >= 0.95 * targets.len() as f64,
        "bounds must contain the truth: {covered}/{}",
        targets.len()
    );
    assert!(
        mean(&domo_widths) < mean(&mnt_widths),
        "Domo bounds {:.2} ms vs MNT {:.2} ms",
        mean(&domo_widths),
        mean(&mnt_widths)
    );
}

#[test]
fn pipeline_is_deterministic() {
    let run = |seed| {
        let trace = run_simulation(&NetworkConfig::small(16, seed));
        let domo = Domo::from_trace(&trace);
        let est = domo.estimate(&EstimatorConfig::default());
        est.times_ms
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn extra_loss_degrades_gracefully() {
    let trace = run_simulation(&NetworkConfig::small(25, 1004));
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let lossy = trace.with_extra_loss(0.3, &mut rng);

    let clean_err = {
        let domo = Domo::from_trace(&trace);
        let est = domo.estimate(&EstimatorConfig::default());
        mean(&estimate_errors(&trace, &domo, &est))
    };
    let lossy_err = {
        let domo = Domo::from_trace(&lossy);
        let est = domo.estimate(&EstimatorConfig::default());
        mean(&estimate_errors(&lossy, &domo, &est))
    };
    // The paper: 3.58 ms → 3.62–4.31 ms under 10–30 % loss. Allow the
    // degradation to stay within ~2× rather than collapsing.
    assert!(
        lossy_err < clean_err * 2.5 + 2.0,
        "loss degradation too steep: {clean_err:.2} → {lossy_err:.2}"
    );
}

#[test]
fn reconstructed_delays_telescope_exactly() {
    let trace = run_simulation(&NetworkConfig::small(16, 1005));
    let domo = Domo::from_trace(&trace);
    let est = domo.estimate(&EstimatorConfig::default());
    for pi in 0..domo.view().num_packets() {
        let p = domo.view().packet(pi);
        let sum: f64 = domo.hop_delays(pi, &est).iter().sum();
        assert!(
            (sum - p.e2e_delay().as_millis_f64()).abs() < 1e-6,
            "per-hop delays of {} must sum to its end-to-end delay",
            p.pid
        );
    }
}
