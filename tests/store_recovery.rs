//! WAL torture test: kill the log at a random byte offset, reopen the
//! sink on the mutilated directory, and hold three properties at every
//! cut point (seeded, property-style):
//!
//! 1. **No panic** — recovery opens cleanly whatever survived.
//! 2. **Clean prefix** — the surviving records are exactly the first
//!    `m` appends; recovery + drain then matches a clean uninterrupted
//!    run over those same `m` packets bit-for-bit.
//! 3. **No double-emit** — the result log holds exactly one record per
//!    reconstructed packet, and a second reopen replays nothing and
//!    appends nothing.
//!
//! The WAL is built directly (fsync `never`, small segments so cuts
//! land in every segment of a multi-segment log), then each iteration
//! copies it to a scratch directory and either truncates or bit-flips
//! at an offset chosen by a seeded Xoshiro generator.

use domo::sink::service::{SinkConfig, SinkService};
use domo::sink::StoreConfig;
use domo::store::wal::WalConfig;
use domo::store::{FsyncPolicy, Wal};
use domo::util::rng::Xoshiro256pp;
use std::path::{Path, PathBuf};

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("domo-store-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
    }
}

fn durable_cfg(data_dir: &Path) -> SinkConfig {
    SinkConfig {
        shards: 2,
        store: Some(StoreConfig {
            fsync: FsyncPolicy::Never,
            checkpoint_every: u64::MAX,
            ..StoreConfig::at(data_dir)
        }),
        ..SinkConfig::default()
    }
}

#[test]
fn wal_cut_at_random_offsets_recovers_a_clean_prefix() {
    let trace = domo::net::run_simulation(&domo::net::NetworkConfig::small(9, 4242));
    let total = trace.packets.len();
    assert!(total > 20, "need a real trace to torture");

    // Build the pristine WAL directly: every packet journaled, small
    // segments so the log spans several files.
    let root = scratch_root("pristine");
    let pristine = root.join("wal");
    {
        let (mut wal, _) = Wal::open(
            &pristine,
            WalConfig {
                fsync: FsyncPolicy::Never,
                segment_bytes: 4096,
            },
        )
        .expect("open pristine wal");
        let mut frame = Vec::new();
        for p in &trace.packets {
            frame.clear();
            domo::sink::encode_packet(p, &mut frame).expect("encode");
            wal.append(&frame).expect("append");
        }
        wal.sync().expect("sync");
    }
    let mut files: Vec<(PathBuf, u64)> = std::fs::read_dir(&pristine)
        .expect("read_dir")
        .map(|e| {
            let e = e.expect("entry");
            let len = e.metadata().expect("meta").len();
            (e.path(), len)
        })
        .collect();
    files.sort();
    assert!(files.len() >= 2, "cuts must be able to land in any segment");
    let total_bytes: u64 = files.iter().map(|(_, l)| l).sum();

    // Per-pid baseline cache: clean-run estimates over each prefix
    // length we end up testing, computed lazily.
    let mut rng = Xoshiro256pp::seed_from_u64(0xD0_40_57_02);
    for round in 0..24 {
        let case = root.join(format!("cut-{round}"));
        let wal_dir = case.join("wal");
        copy_dir(&pristine, &wal_dir);

        // Pick a byte anywhere in the log (weighted by size) and
        // either truncate there or flip a bit — a torn tail or a
        // corrupt sector, the two crash shapes that matter.
        let mut at = rng.next_u64() % total_bytes;
        let (file, offset) = files
            .iter()
            .find_map(|(p, len)| {
                if at < *len {
                    Some((wal_dir.join(p.file_name().expect("name")), at))
                } else {
                    at -= len;
                    None
                }
            })
            .expect("offset within log");
        let flip = rng.next_u64().is_multiple_of(2);
        if flip {
            let mut bytes = std::fs::read(&file).expect("read segment");
            let idx = offset as usize;
            bytes[idx] ^= 0x40;
            std::fs::write(&file, bytes).expect("write corrupted");
        } else {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&file)
                .expect("open segment");
            f.set_len(offset).expect("truncate");
        }

        // Property 1: recovery never panics, whatever survived.
        let service = SinkService::open(durable_cfg(&case)).expect("recovery must not fail");
        let report = service.recovery_report().expect("store enabled");
        let m = report.replayed as usize;
        assert!(m <= total, "round {round}: replayed more than was written");
        service.drain();

        // Property 2: the survivors are exactly the first m packets,
        // and the recovered estimates match a clean run over that
        // prefix bit-for-bit.
        let reference = SinkService::start(SinkConfig {
            shards: 2,
            ..SinkConfig::default()
        });
        for p in &trace.packets[..m] {
            reference.ingest(p.clone());
        }
        reference.drain();
        for p in &trace.packets[..m] {
            let got = service
                .reconstruction(p.pid)
                .unwrap_or_else(|| panic!("round {round}: lost journaled packet {}", p.pid));
            let want = reference.reconstruction(p.pid).expect("reference");
            let a: Vec<u64> = got.hop_times_ms.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = want.hop_times_ms.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "round {round}: {} diverges from clean run", p.pid);
        }
        for p in &trace.packets[m..] {
            assert!(
                service.reconstruction(p.pid).is_none(),
                "round {round}: packet {} appeared from beyond the cut",
                p.pid
            );
        }
        reference.shutdown();

        // Property 3: exactly one result per packet, and a second
        // reopen finds a fully-covered log — nothing replays, nothing
        // is re-appended.
        let persisted = service
            .store_status()
            .expect("store enabled")
            .results
            .records;
        assert_eq!(persisted, m as u64, "round {round}: result-log duplicates");
        service.shutdown();
        let again = SinkService::open(durable_cfg(&case)).expect("second reopen");
        let report = again.recovery_report().expect("store enabled");
        assert_eq!(
            report.replayed, 0,
            "round {round}: shutdown checkpoint ignored"
        );
        again.drain();
        let persisted = again.store_status().expect("store enabled").results.records;
        assert_eq!(persisted, m as u64, "round {round}: reopen double-emitted");
        again.shutdown();
        let _ = std::fs::remove_dir_all(&case);
    }
    let _ = std::fs::remove_dir_all(&root);
}
