//! Failure injection: the reconstruction stack must stay sound and
//! well-behaved when the network misbehaves — overflowing queues,
//! hostile loss rates, no-route partitions, and pathological traffic.

use domo::core::TraceView;
use domo::net::Placement;
use domo::prelude::*;

fn mean_error(trace: &NetworkTrace, domo: &Domo, est: &Estimates) -> f64 {
    let view = domo.view();
    let errs: Vec<f64> = view
        .vars()
        .iter()
        .enumerate()
        .map(|(v, hr)| {
            let truth = trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
            (est.time_of(v).unwrap() - truth).abs()
        })
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

#[test]
fn saturated_queues_still_reconstruct() {
    // Queue capacity 2 and aggressive traffic: heavy queue drops, long
    // sojourns — the pipeline must stay sound and sane.
    let mut cfg = NetworkConfig::small(25, 7001);
    cfg.queue_capacity = 1;
    cfg.traffic_period = SimDuration::from_millis(600);
    cfg.traffic_jitter = SimDuration::from_millis(200);
    let trace = run_simulation(&cfg);
    assert!(
        trace.stats.dropped_queue > 0,
        "the scenario must overflow queues"
    );
    assert!(trace.stats.delivered > 30, "and still deliver something");

    let domo = Domo::from_trace(&trace);
    let est = domo.estimate(&EstimatorConfig::default());
    assert!(est.times_ms.iter().all(Option::is_some));
    let err = mean_error(&trace, &domo, &est);
    assert!(err < 40.0, "error {err:.1} ms diverged under congestion");
}

#[test]
fn unreachable_nodes_are_tolerated() {
    // Uniform random placement can strand nodes without routes; their
    // packets drop with `dropped_no_route` and everything else works.
    let mut cfg = NetworkConfig::small(30, 7002);
    cfg.placement = Placement::UniformRandom;
    cfg.node_spacing = 16.0; // sparse → likely partitions
    let trace = run_simulation(&cfg);
    let domo = Domo::from_trace(&trace);
    let est = domo.estimate(&EstimatorConfig::default());
    assert!(est.times_ms.iter().all(Option::is_some));
    // Either the network was lucky and fully connected, or drops were
    // counted — never silent loss.
    let s = trace.stats;
    assert_eq!(
        s.generated,
        s.delivered + s.dropped_queue + s.dropped_retx + s.dropped_no_route + s.dropped_ttl
    );
}

#[test]
fn extreme_extra_loss_keeps_bounds_sound() {
    let trace = run_simulation(&NetworkConfig::small(16, 7003));
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let lossy = trace.with_extra_loss(0.6, &mut rng);
    let domo = Domo::from_trace(&lossy);
    let view = domo.view();
    let targets: Vec<usize> = (0..view.num_vars()).step_by(5).collect();
    let bounds = domo.bounds(&BoundsConfig::default(), &targets);
    let mut inside = 0;
    for &t in &targets {
        let (lo, hi) = bounds.of(t).unwrap();
        assert!(lo <= hi + 1e-6);
        let hr = view.vars()[t];
        let truth = lossy.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
        if truth >= lo - 0.5 && truth <= hi + 0.5 {
            inside += 1;
        }
    }
    assert!(
        inside as f64 >= 0.93 * targets.len() as f64,
        "bounds lost soundness under 60% loss: {inside}/{}",
        targets.len()
    );
}

#[test]
fn single_hop_network_degenerates_gracefully() {
    // Every node one hop from the sink: no interior unknowns at all.
    let mut cfg = NetworkConfig::small(4, 7004);
    cfg.radio_d50 = 200.0; // everyone hears the sink
    let trace = run_simulation(&cfg);
    assert!(trace.packets.iter().all(|p| p.path_len() == 2));
    let domo = Domo::from_trace(&trace);
    assert_eq!(domo.view().num_vars(), 0);
    let est = domo.estimate(&EstimatorConfig::default());
    assert!(est.times_ms.is_empty());
    // hop_times still returns the two known endpoints.
    let times = domo.hop_times(0, &est);
    assert_eq!(times.len(), 2);
}

#[test]
fn retransmission_storms_accounted() {
    // Lower link quality until retransmission drops appear; the S(p)
    // fields still cover the surviving packets' own sojourns.
    let mut cfg = NetworkConfig::small(25, 7005);
    cfg.radio_d50 = 10.0; // marginal links everywhere
    cfg.max_retries = 2;
    let trace = run_simulation(&cfg);
    assert!(
        trace.stats.dropped_retx > 0,
        "scenario must drop on retries"
    );
    let view = TraceView::new(trace.packets.clone());
    for p in 0..view.num_packets() {
        let packet = view.packet(p);
        if packet.path_len() < 2 {
            continue;
        }
        let truth = trace.truth(packet.pid).unwrap();
        let own = (truth[1] - truth[0]).as_millis_f64();
        assert!(f64::from(packet.sum_of_delays_ms) >= own - 1.5);
    }
}

#[test]
fn lost_acks_degrade_gracefully() {
    // 15 % ACK loss: spurious retransmissions skew the sender-side
    // sum-of-delays commits relative to the receiver-recorded arrivals.
    // Reconstruction absorbs the skew through the constraint slack.
    let mut cfg = NetworkConfig::small(25, 7007);
    cfg.ack_reliability = 0.85;
    let trace = run_simulation(&cfg);
    let domo = Domo::from_trace(&trace);
    let mut est_cfg = EstimatorConfig::default();
    est_cfg.constraints.sum_slack_ms = 5.0; // widen for the skew
    let est = domo.estimate(&est_cfg);
    let err = mean_error(&trace, &domo, &est);
    assert!(err < 15.0, "error {err:.1} ms diverged under ACK loss");
}

#[test]
fn clock_drift_extremes_stay_within_slack() {
    // 200 ppm drift (cheap crystals): sum constraints still hold at
    // truth thanks to the quantization slack.
    let mut cfg = NetworkConfig::small(16, 7006);
    cfg.clock_drift_ppm = 200.0;
    let trace = run_simulation(&cfg);
    let domo = Domo::from_trace(&trace);
    let est = domo.estimate(&EstimatorConfig::default());
    let err = mean_error(&trace, &domo, &est);
    assert!(err < 15.0, "drift should cost little: {err:.2} ms");
}
