//! Domo must work across MAC and routing variants — the reconstruction
//! consumes only the sink-side trace, so duty-cycled radios and a
//! different collection protocol should change the delays, not the
//! soundness.

use domo::net::{MacMode, RoutingProtocol};
use domo::prelude::*;

fn mean_error(trace: &NetworkTrace, domo: &Domo, est: &Estimates) -> f64 {
    let view = domo.view();
    let errs: Vec<f64> = view
        .vars()
        .iter()
        .enumerate()
        .map(|(v, hr)| {
            let truth = trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
            (est.time_of(v).unwrap() - truth).abs()
        })
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

#[test]
fn reconstruction_works_under_low_power_listening() {
    let mut cfg = NetworkConfig::small(16, 8101);
    cfg.mac_mode = MacMode::LowPowerListening {
        wake_interval: SimDuration::from_millis(100),
    };
    let trace = run_simulation(&cfg);
    let domo = Domo::from_trace(&trace);
    let est = domo.estimate(&EstimatorConfig::default());

    // Per-hop delays are now dominated by ~U[0,100] ms wake-ups, so the
    // absolute error budget scales with the wake interval — but the
    // estimator must track it, not diverge.
    let err = mean_error(&trace, &domo, &est);
    assert!(err < 50.0, "error {err:.1} ms diverged under LPL");

    // Relative to the naive midpoint baseline it must still win.
    let iv = domo::core::propagate(domo.view(), 1.0, 3);
    let mid_err: f64 = {
        let errs: Vec<f64> = domo
            .view()
            .vars()
            .iter()
            .enumerate()
            .map(|(v, hr)| {
                let truth =
                    trace.truth(domo.view().packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
                (iv.midpoint(v) - truth).abs()
            })
            .collect();
        errs.iter().sum::<f64>() / errs.len().max(1) as f64
    };
    assert!(
        err < mid_err,
        "Domo {err:.1} vs midpoint {mid_err:.1} under LPL"
    );
}

#[test]
fn reconstruction_works_under_lqi_routing() {
    let mut cfg = NetworkConfig::small(25, 8102);
    cfg.routing_protocol = RoutingProtocol::LqiMultihop { min_prr: 0.5 };
    let trace = run_simulation(&cfg);
    assert!(trace.stats.delivered > 50);
    let domo = Domo::from_trace(&trace);
    let est = domo.estimate(&EstimatorConfig::default());
    let err = mean_error(&trace, &domo, &est);
    assert!(err < 10.0, "error {err:.1} ms under LQI routing");

    // Bounds stay sound on the different tree shape, too.
    let view = domo.view();
    let targets: Vec<usize> = (0..view.num_vars()).step_by(9).collect();
    let bounds = domo.bounds(&BoundsConfig::default(), &targets);
    let mut inside = 0;
    for &t in &targets {
        let (lo, hi) = bounds.of(t).unwrap();
        let hr = view.vars()[t];
        let truth = trace.truth(view.packet(hr.packet).pid).unwrap()[hr.hop].as_millis_f64();
        if truth >= lo - 0.5 && truth <= hi + 0.5 {
            inside += 1;
        }
    }
    assert!(inside as f64 >= 0.95 * targets.len() as f64);
}

#[test]
fn protocols_produce_different_trees() {
    // Sanity: the variant actually changes behavior (otherwise the
    // tests above prove nothing).
    let mut ctp = NetworkConfig::small(25, 8103);
    ctp.fading_sigma = 0.2;
    let mut lqi = ctp.clone();
    lqi.routing_protocol = RoutingProtocol::LqiMultihop { min_prr: 0.6 };
    let a = run_simulation(&ctp);
    let b = run_simulation(&lqi);
    assert_ne!(
        a.packets, b.packets,
        "different protocols should route at least some packets differently"
    );
}
