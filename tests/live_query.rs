//! Acceptance for the live-query layer: `SUBSCRIBE` push streams must
//! deliver every emitted reconstruction exactly once — across a forced
//! checkpoint, under a NODE filter, and with a retained-stream replay —
//! and `AGG` time-series state must survive a checkpoint/recovery cycle
//! bit-identically.

use domo::net::{run_simulation, NetworkConfig};
use domo::query::sub::{RecvOutcome, SubFilter};
use domo::sink::service::{SinkConfig, SinkService};
use domo::sink::StoreConfig;
use std::collections::BTreeSet;
use std::time::Duration;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("domo-live-query-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drains a subscription until `want` events arrived (or a timeout),
/// returning the pid strings in arrival order.
fn collect(sub: &domo::query::Subscription, want: usize) -> Vec<String> {
    let mut got = Vec::new();
    while got.len() < want {
        match sub.recv(Duration::from_secs(10)) {
            RecvOutcome::Event(ev) => got.push(format!("n{}#{}", ev.origin, ev.seq)),
            RecvOutcome::Timeout => break,
            RecvOutcome::Closed { .. } => break,
        }
    }
    got
}

#[test]
fn subscriptions_are_exactly_once_across_a_checkpoint() {
    let trace = run_simulation(&NetworkConfig::small(9, 4207));
    let total = trace.packets.len();
    assert!(total > 4, "trace delivered nothing");
    let half = total / 2;

    let dir = scratch("ckpt");
    let service = SinkService::start(SinkConfig {
        shards: 2,
        store: Some(StoreConfig::at(&dir)),
        ..SinkConfig::default()
    });
    // Registered before the first emission: the stream must cover the
    // whole run with no backfill.
    let (sub, backfill) = service.subscribe(SubFilter::All, false);
    assert!(backfill.is_empty(), "nothing was emitted yet");

    for p in &trace.packets[..half] {
        service.ingest(p.clone());
    }
    service.drain();
    service
        .checkpoint_now()
        .expect("forced checkpoint mid-stream");
    for p in &trace.packets[half..] {
        service.ingest(p.clone());
    }
    service.drain();

    let truth: BTreeSet<String> = service
        .range(f64::NEG_INFINITY, f64::INFINITY)
        .expect("durable range")
        .iter()
        .map(|(pid, _)| pid.to_string())
        .collect();
    assert!(!truth.is_empty());

    let got = collect(&sub, truth.len());
    let got_set: BTreeSet<String> = got.iter().cloned().collect();
    assert_eq!(got.len(), got_set.len(), "a pid was delivered twice");
    assert_eq!(got_set, truth, "stream diverges from the emitted set");
    // And nothing extra is in flight.
    assert!(matches!(
        sub.recv(Duration::from_millis(50)),
        RecvOutcome::Timeout
    ));
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn node_filter_and_replay_backfill_select_exactly_the_matching_subset() {
    let trace = run_simulation(&NetworkConfig::small(9, 4211));
    let dir = scratch("node");
    let service = SinkService::start(SinkConfig {
        shards: 2,
        store: Some(StoreConfig::at(&dir)),
        ..SinkConfig::default()
    });
    for p in &trace.packets {
        service.ingest(p.clone());
    }
    service.drain();

    let recs = service
        .range(f64::NEG_INFINITY, f64::INFINITY)
        .expect("durable range");
    // The busiest forwarder: guaranteed a nonempty, usually proper,
    // subset.
    let mut per_node = std::collections::HashMap::new();
    for (_, rec) in &recs {
        let n = rec.path.len();
        for node in &rec.path[..n.saturating_sub(1)] {
            *per_node.entry(node.index() as u16).or_insert(0usize) += 1;
        }
    }
    let (&node, _) = per_node
        .iter()
        .max_by_key(|&(_, &c)| c)
        .expect("no forwarding node");
    let expected: BTreeSet<String> = recs
        .iter()
        .filter(|(_, rec)| {
            let n = rec.path.len();
            rec.path[..n.saturating_sub(1)]
                .iter()
                .any(|nd| nd.index() as u16 == node)
        })
        .map(|(pid, _)| pid.to_string())
        .collect();
    assert!(!expected.is_empty());

    // `replay = true` snapshots the retained stream at subscribe time,
    // already filtered.
    let (_sub, backfill) = service.subscribe(SubFilter::Node(node), true);
    let got: BTreeSet<String> = backfill.iter().map(|(pid, _)| pid.to_string()).collect();
    assert_eq!(got.len(), backfill.len(), "backfill repeated a pid");
    assert_eq!(got, expected, "NODE backfill diverges from the subset");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn agg_series_survive_checkpoint_recovery_bit_identically() {
    let trace = run_simulation(&NetworkConfig::small(9, 4219));
    let dir = scratch("agg");
    let cfg = || SinkConfig {
        shards: 2,
        store: Some(StoreConfig::at(&dir)),
        ..SinkConfig::default()
    };
    let service = SinkService::start(cfg());
    for p in &trace.packets {
        service.ingest(p.clone());
    }
    service.drain();
    let recs = service
        .range(f64::NEG_INFINITY, f64::INFINITY)
        .expect("durable range");
    let node = recs
        .iter()
        .flat_map(|(_, rec)| {
            let n = rec.path.len();
            rec.path[..n.saturating_sub(1)].iter()
        })
        .next()
        .expect("no forwarding node")
        .index() as u16;
    let before = service
        .agg_query(node, 0.0, 1e9, 1_000)
        .expect("AGG before recovery");
    assert!(!before.is_empty(), "no buckets before recovery");
    service.checkpoint_now().expect("checkpoint");
    service.shutdown();

    // A fresh service on the same directory restores the sketches from
    // the checkpoint; the same query must reproduce every bucket field
    // bit-for-bit (AggBucket is all exact integers and f64s — equality
    // here is bitwise, not approximate).
    let recovered = SinkService::start(cfg());
    let after = recovered
        .agg_query(node, 0.0, 1e9, 1_000)
        .expect("AGG after recovery");
    assert_eq!(before, after, "recovered AGG series diverge");
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
