//! Quickstart: simulate a small collection network, reconstruct the
//! per-hop delay of every packet, and compare with the ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use domo::prelude::*;

fn main() {
    // A 5×5-grid collection network, one sink, CTP-style routing, one
    // packet per node every ~5 s for a simulated minute.
    let config = NetworkConfig::small(25, 2024);
    let trace = run_simulation(&config);
    println!(
        "simulated {} nodes: {} packets delivered ({:.1}% delivery), {} unknown arrival times",
        config.num_nodes,
        trace.stats.delivered,
        100.0 * trace.stats.delivery_ratio(),
        trace.num_unknowns(),
    );

    // Reconstruct from sink-side data only (paths, generation times,
    // sink arrivals, the 2-byte sum-of-delays field).
    let domo = Domo::from_trace(&trace);
    let estimates = domo.estimate(&EstimatorConfig::default());
    println!(
        "estimator: {} windows, {} ADMM iterations, {:?}",
        estimates.stats.windows, estimates.stats.total_iterations, estimates.stats.solve_time
    );

    // Score against the simulator's ground truth.
    let view = domo.view();
    let mut errors: Vec<f64> = Vec::new();
    for (var, hr) in view.vars().iter().enumerate() {
        let pid = view.packet(hr.packet).pid;
        let truth = trace.truth(pid).expect("delivered packet")[hr.hop].as_millis_f64();
        let est = estimates.time_of(var).expect("committed estimate");
        errors.push((est - truth).abs());
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let under_4ms = errors.iter().filter(|&&e| e < 4.0).count() as f64 / errors.len() as f64;
    println!(
        "mean reconstruction error: {mean:.2} ms ({:.0}% of errors < 4 ms)",
        under_4ms * 100.0
    );

    // Decompose one multi-hop packet's end-to-end delay.
    let longest = (0..view.num_packets())
        .max_by_key(|&p| view.packet(p).path.len())
        .expect("non-empty trace");
    let packet = view.packet(longest);
    println!(
        "\ndecomposition of {} (path {:?}, e2e {:.1} ms):",
        packet.pid,
        packet.path.iter().map(|n| n.index()).collect::<Vec<_>>(),
        packet.e2e_delay().as_millis_f64()
    );
    let delays = domo.hop_delays(longest, &estimates);
    let truth = trace.truth(packet.pid).expect("truth");
    for (i, d) in delays.iter().enumerate() {
        let true_d = (truth[i + 1] - truth[i]).as_millis_f64();
        println!(
            "  hop {:>2} ({} → {}): estimated {d:7.2} ms   true {true_d:7.2} ms",
            i,
            packet.path[i],
            packet.path[i + 1]
        );
    }
}
