//! Feeding Domo a trace from outside this repository.
//!
//! Domo's PC side only needs four sink-side quantities per packet
//! (path, generation time, sink arrival, the 2-byte `S(p)` field). Any
//! deployment that records them can export the line format of
//! `domo_net::trace_io` and run the reconstruction — no simulator
//! involved. This example simulates that workflow: it writes a trace to
//! disk, "ships" it, reads it back, reconstructs, and prints the
//! operator-facing bottleneck report.
//!
//! ```text
//! cargo run --release --example external_trace
//! ```

use domo::core::report::{build_report, ReportOptions};
use domo::net::trace_io;
use domo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Producer side (would be your deployment's log collector). ----
    let trace = run_simulation(&NetworkConfig::small(25, 314));
    let dir = std::env::temp_dir().join("domo_external_trace");
    std::fs::create_dir_all(&dir)?;
    let file = dir.join("deployment.trace");
    trace_io::write_packets(&file, &trace.packets)?;
    println!(
        "exported {} packets to {} ({} bytes)",
        trace.packets.len(),
        file.display(),
        std::fs::metadata(&file)?.len()
    );

    // ---- Consumer side (any machine, any time later). ----
    let packets = trace_io::read_packets(&file)?;
    println!("imported {} packets", packets.len());
    let domo = Domo::from_packets(packets);
    let estimates = domo.estimate(&EstimatorConfig::default());
    println!(
        "reconstructed {} per-hop arrival times in {:?}",
        domo.view().num_vars(),
        estimates.stats.solve_time
    );

    // The operator's view: which forwarders are slow?
    let report = build_report(domo.view(), &estimates, &ReportOptions::default());
    println!("\nslowest forwarders (reconstructed):");
    print!("{}", report.render(5));

    std::fs::remove_file(&file).ok();
    Ok(())
}
