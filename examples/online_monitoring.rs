//! Online per-hop monitoring with the streaming estimator.
//!
//! The paper's pipeline is offline; a live sink wants delays *now*. This
//! example replays a trace in sink-arrival order — an event-burst
//! workload, so congestion comes and goes — pushing each packet into
//! [`domo::core::StreamingEstimator`] and printing the slowest forwarder
//! every time a flush emits a batch.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use domo::core::{ReconstructedPacket, StreamingEstimator};
use domo::net::EventBursts;
use domo::prelude::*;
use std::collections::HashMap;

fn main() {
    // An event-monitoring workload: periodic background traffic plus
    // bursts around random epicenters.
    let mut config = NetworkConfig::small(36, 77);
    config.duration = SimDuration::from_secs(120);
    config.event_bursts = Some(EventBursts {
        mean_interval: SimDuration::from_secs(15),
        radius: 25.0,
        packets: 4,
        spacing: SimDuration::from_millis(150),
    });
    let trace = run_simulation(&config);
    println!(
        "replaying {} packets ({} from bursts and periodic traffic)",
        trace.packets.len(),
        trace.stats.generated
    );

    let mut online = StreamingEstimator::new(EstimatorConfig::default());
    let mut batch_no = 0;
    let mut report = |batch: Vec<ReconstructedPacket>, trace: &NetworkTrace| {
        if batch.is_empty() {
            return;
        }
        batch_no += 1;
        // Slowest forwarder within this batch.
        let mut sojourns: HashMap<u16, Vec<f64>> = HashMap::new();
        let mut last_arrival = 0.0f64;
        for r in &batch {
            let packet = trace
                .packets
                .iter()
                .find(|p| p.pid == r.pid)
                .expect("emitted packets come from the trace");
            last_arrival = last_arrival.max(packet.sink_arrival.as_millis_f64());
            for (hop, w) in r.hop_times_ms.windows(2).enumerate() {
                sojourns
                    .entry(packet.path[hop].index() as u16)
                    .or_default()
                    .push(w[1] - w[0]);
            }
        }
        let slowest = sojourns
            .iter()
            .filter(|(_, ds)| ds.len() >= 3)
            .map(|(&n, ds)| (n, ds.iter().sum::<f64>() / ds.len() as f64))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        if let Some((node, mean)) = slowest {
            println!(
                "batch {batch_no:>2} (≤ t={:>7.1}s, {:>3} packets): slowest forwarder n{node} \
                 at {mean:.2} ms mean sojourn",
                last_arrival / 1000.0,
                batch.len(),
            );
        }
    };

    for p in &trace.packets {
        let emitted = online.push(p.clone());
        report(emitted, &trace);
    }
    report(online.finish(), &trace);
    println!(
        "\nstream complete: {} packets reconstructed online",
        online.emitted()
    );
}
