//! The paper's motivating scenario (Figure 1): an urban CO₂-monitoring
//! deployment whose end-to-end delays shift over time, where per-hop
//! tomography pinpoints the node that actually causes a slowdown.
//!
//! The example simulates a CitySee-style collection network with
//! time-varying links, renders the end-to-end delay map at two times
//! (the information an operator has *without* Domo), then uses Domo's
//! reconstruction to rank the per-node sojourn times and identify the
//! bottleneck forwarder (the information Domo adds).
//!
//! ```text
//! cargo run --release --example co2_monitoring
//! ```

use domo::prelude::*;
use std::collections::HashMap;

fn main() {
    // A 10×10 deployment with pronounced link dynamics, 5 simulated
    // minutes — long enough for the delay landscape to shift.
    let mut config = NetworkConfig::paper_scale(100, 7);
    config.link_variation_amplitude = 0.25;
    config.duration = SimDuration::from_secs(240);
    let trace = run_simulation(&config);
    println!(
        "CitySee-style network: {} packets delivered, {:.1}% delivery ratio",
        trace.stats.delivered,
        100.0 * trace.stats.delivery_ratio()
    );

    // ---- What the operator sees without Domo: e2e delays only. ----
    let half = SimTime::ZERO + config.duration / 2;
    let mut first_half: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut second_half: HashMap<usize, Vec<f64>> = HashMap::new();
    for p in &trace.packets {
        let bucket = if p.gen_time < half {
            &mut first_half
        } else {
            &mut second_half
        };
        bucket
            .entry(p.pid.origin.index())
            .or_default()
            .push(p.e2e_delay().as_millis_f64());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut shifted: Vec<(usize, f64, f64)> = first_half
        .iter()
        .filter_map(|(&node, a)| {
            let b = second_half.get(&node)?;
            Some((node, mean(a), mean(b)))
        })
        .collect();
    shifted.sort_by(|x, y| {
        let dx = (x.2 - x.1).abs();
        let dy = (y.2 - y.1).abs();
        dy.partial_cmp(&dx).expect("finite deltas")
    });
    println!("\nnodes whose end-to-end delay shifted most between the two halves:");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "node", "t1 e2e (ms)", "t2 e2e (ms)", "shift"
    );
    for &(node, a, b) in shifted.iter().take(5) {
        println!(
            "{node:>6} {a:>12.1} {b:>12.1} {:>8.1}%",
            100.0 * (b - a).abs() / a.max(1.0)
        );
    }
    println!("(end-to-end delays flag *sources*, but the slow hop may be elsewhere)");

    // ---- What Domo adds: the per-hop decomposition. ----
    let domo = Domo::from_trace(&trace);
    let estimates = domo.estimate(&EstimatorConfig::default());
    let view = domo.view();

    // The library's operator report: slowest forwarders, second half.
    use domo::core::report::{build_report, compare_windows, ReportOptions};
    let second_half_report = build_report(
        view,
        &estimates,
        &ReportOptions {
            from: half,
            until: SimTime::MAX,
        },
    );
    println!("\nDomo's per-hop view (second half): slowest forwarders");
    print!("{}", second_half_report.render(5));

    // And the "what changed?" view across the two halves.
    let shifts = compare_windows(view, &estimates, half, 5);
    println!("\nforwarders whose sojourn changed most between halves:");
    for s in shifts.iter().take(3) {
        println!(
            "  {}: {:.2} ms → {:.2} ms ({:+.2} ms)",
            s.node,
            s.before_ms,
            s.after_ms,
            s.delta_ms()
        );
    }

    // Cross-check the ranking against ground truth (which a real
    // operator would not have — that is the point of Domo).
    let true_mean = |node: usize| -> f64 {
        let mut ds = Vec::new();
        for p in &trace.packets {
            if p.gen_time < half {
                continue;
            }
            if let Some(hop) = p.path.iter().position(|n| n.index() == node) {
                if hop + 1 < p.path.len() {
                    let t = trace.truth(p.pid).expect("truth");
                    ds.push((t[hop + 1] - t[hop]).as_millis_f64());
                }
            }
        }
        mean(&ds)
    };
    let network_mean = {
        let all: Vec<f64> = second_half_report
            .nodes
            .iter()
            .map(|n| n.sojourn_ms.mean)
            .collect();
        mean(&all)
    };
    println!("\nbottleneck check (second half, vs ground truth):");
    println!(
        "{:>6} {:>16} {:>14}",
        "node", "Domo mean (ms)", "true mean (ms)"
    );
    for n in second_half_report.bottlenecks(3, 5) {
        println!(
            "{:>6} {:>16.2} {:>14.2}",
            n.node.to_string(),
            n.sojourn_ms.mean,
            true_mean(n.node.index())
        );
    }
    println!(
        "(network-wide mean sojourn: {network_mean:.2} ms — the flagged nodes sit well above it)"
    );
}
