//! The semidefinite relaxation in isolation.
//!
//! The paper's FIFO constraint `(t_ix(x) − t_iy(y))(t_ix+1(x) −
//! t_iy+1(y)) > 0` is bilinear; Domo lifts it to a PSD constraint on
//! `Z = [[U, u], [uᵀ, 1]]`. This example runs the estimator twice on the
//! same congested trace — once with undecided FIFO pairs dropped
//! (linearized mode) and once with the full lifting — and shows what the
//! relaxation buys, plus a direct look at one lifted window solved by
//! the from-scratch ADMM SDP solver.
//!
//! ```text
//! cargo run --release --example sdp_relaxation
//! ```

use domo::prelude::*;

fn mean_error(trace: &NetworkTrace, domo: &Domo, est: &domo::core::Estimates) -> f64 {
    let view = domo.view();
    let mut errors = Vec::new();
    for (var, hr) in view.vars().iter().enumerate() {
        let truth = trace.truth(view.packet(hr.packet).pid).expect("truth")[hr.hop].as_millis_f64();
        if let Some(t) = est.time_of(var) {
            errors.push((t - truth).abs());
        }
    }
    errors.iter().sum::<f64>() / errors.len().max(1) as f64
}

fn main() {
    // A dense-traffic network: queues build up, so packets overlap at
    // forwarders and many FIFO pairs are genuinely ambiguous.
    let mut config = NetworkConfig::small(16, 5);
    config.traffic_period = SimDuration::from_secs(2);
    config.traffic_jitter = SimDuration::from_millis(500);
    let trace = run_simulation(&config);
    let domo = Domo::from_trace(&trace);
    println!(
        "congested trace: {} packets, {} unknowns",
        domo.view().num_packets(),
        domo.view().num_vars()
    );

    // Small windows so the lifted blocks stay compact (the lifting is
    // quadratic in window unknowns).
    let base = EstimatorConfig {
        window_packets: 6,
        max_sdp_unknowns: 24,
        ..EstimatorConfig::default()
    };

    let linearized = EstimatorConfig {
        fifo_mode: FifoMode::Linearized,
        ..base.clone()
    };
    let sdp = EstimatorConfig {
        fifo_mode: FifoMode::SdpRelaxation,
        ..base.clone()
    };
    let off = EstimatorConfig {
        fifo_mode: FifoMode::Off,
        ..base
    };

    for (label, cfg) in [
        ("FIFO off", off),
        ("linearized FIFO", linearized),
        ("SDP-relaxed FIFO", sdp),
    ] {
        let start = std::time::Instant::now();
        let est = domo.estimate(&cfg);
        println!(
            "{label:>18}: mean error {:.2} ms  ({} windows, {} lifted, {:?})",
            mean_error(&trace, &domo, &est),
            est.stats.windows,
            est.stats.sdp_windows,
            start.elapsed()
        );
    }

    // ---- One lifted FIFO constraint solved directly. ----
    // Two packets share a forwarder: arrivals u1, u2, departures u3,
    // u4. The FIFO product (u2 − u1)(u4 − u3) ≥ 0 says the orders must
    // agree. The (lifted) objective pulls toward an order-violating
    // point — arrival targets say "packet 2 first" (u1 → 0, u2 → −1)
    // while departure targets say "packet 1 first" (u3 → 2, u4 → 6).
    // The cheapest repair is to move the *arrivals* together
    // (u1 ≈ u2 ≈ −0.5) and leave the departures alone; with a single
    // quadratic constraint the semidefinite relaxation is tight
    // (S-procedure), so the lifted solve recovers exactly that.
    //
    // Note the objective is lifted along with the constraint
    // (`Σ U_ii − 2·targetᵢ·uᵢ`): the minimization pressure on diag(U)
    // is what pins `U ≈ u·uᵀ` — left quadratic in `u` alone, U would
    // inflate freely and the lifted row would constrain nothing.
    use domo::solver::{solve, svec::svec_index, QpBuilder, Settings};
    let m = 4; // u1..u4
    let lifted = m * (m + 1) / 2;
    let mut b = QpBuilder::new(m + lifted + 1);
    let uvar = |i: usize, j: usize| m + svec_index(i, j);
    let corner = m + lifted;
    let targets = [0.0f64, -1.0, 2.0, 6.0];
    for (i, t) in targets.iter().enumerate() {
        b.add_linear(uvar(i, i), 1.0);
        b.add_linear(i, -2.0 * t);
    }
    b.fix_variable(corner, 1.0);
    // Lifted product (u2 − u1)(u4 − u3) = U24 − U23 − U14 + U13 ≥ 0.
    b.add_row(
        &[
            (uvar(1, 3), 1.0),
            (uvar(1, 2), -1.0),
            (uvar(0, 3), -1.0),
            (uvar(0, 2), 1.0),
        ],
        0.0,
        f64::INFINITY,
    );
    // Boxes keep the lifting tight (secant bounds on the diagonal).
    for i in 0..m {
        b.add_row(&[(i, 1.0)], -8.0, 8.0);
        b.add_row(&[(uvar(i, i), 1.0)], 0.0, 64.0);
    }
    // Z = [[U, u], [uᵀ, 1]] ⪰ 0.
    let mut block = Vec::new();
    for j in 0..=m {
        for i in 0..=j {
            block.push(if j < m {
                uvar(i, j)
            } else if i < m {
                i
            } else {
                corner
            });
        }
    }
    b.add_psd_block(m + 1, block).expect("block shape");
    let sol = solve(&b.build().expect("valid problem"), &Settings::default());
    println!(
        "\nlifted toy problem: arrivals ({:.2}, {:.2}), departures ({:.2}, {:.2}) — \
         targets were (0, −1) / (2, 6); the lifted row merged the arrivals \
         [{:?}, {} iterations]",
        sol.x[0], sol.x[1], sol.x[2], sol.x[3], sol.status, sol.iterations
    );
}
