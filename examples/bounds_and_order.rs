//! Bounds and event-order reconstruction: the two secondary outputs of
//! Domo's PC-side program, compared against the MNT and MessageTracing
//! baselines on the same trace.
//!
//! Estimated values answer "what was the delay?"; bounds answer "what is
//! it *guaranteed* to be between?" — the form the paper argues is more
//! useful for SLA-style monitoring. Event order is what log-based
//! tracing systems (MessageTracing) reconstruct; Domo recovers it nearly
//! exactly as a by-product of its arrival-time estimates.
//!
//! ```text
//! cargo run --release --example bounds_and_order
//! ```

use domo::baselines::{message_tracing, mnt};
use domo::prelude::*;
use domo::util::stats::average_displacement;

fn main() {
    let trace = run_simulation(&NetworkConfig::small(36, 99));
    let domo = Domo::from_trace(&trace);
    let view = domo.view();
    println!(
        "trace: {} packets, {} unknown arrival times",
        view.num_packets(),
        view.num_vars()
    );

    // ---- Bounds: Domo's sub-graph LPs vs MNT's anchor brackets. ----
    let targets: Vec<usize> = (0..view.num_vars()).step_by(5).collect();
    let bounds = domo.bounds(&BoundsConfig::default(), &targets);
    let mnt_result = mnt::run_mnt(&trace, view, &mnt::MntConfig::default());

    let mut domo_widths = Vec::new();
    let mut mnt_widths = Vec::new();
    let mut inside = 0;
    for &t in &targets {
        let (lo, hi) = bounds.of(t).expect("computed target");
        domo_widths.push(hi - lo);
        mnt_widths.push(mnt_result.ub[t] - mnt_result.lb[t]);
        let hr = view.vars()[t];
        let truth = trace.truth(view.packet(hr.packet).pid).expect("truth")[hr.hop].as_millis_f64();
        if truth >= lo - 0.5 && truth <= hi + 0.5 {
            inside += 1;
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("\nbound accuracy over {} sampled unknowns:", targets.len());
    println!(
        "  Domo  mean width {:>7.2} ms  (truth inside {}/{} bounds)",
        mean(&domo_widths),
        inside,
        targets.len()
    );
    println!("  MNT   mean width {:>7.2} ms", mean(&mnt_widths));
    println!(
        "  (sub-graphs: {} LP solves, {} cut edges → {} after BLP tuning)",
        bounds.stats.lp_solves, bounds.stats.cut_before, bounds.stats.cut_after
    );

    // ---- Event order: Domo estimates vs MessageTracing logs. ----
    let estimates = domo.estimate(&EstimatorConfig::default());
    let truth = message_tracing::truth_order(&trace, view);
    let domo_order =
        message_tracing::order_by_estimates(view, |pi, hop| match view.time_ref(pi, hop) {
            domo::core::TimeRef::Known(t) => Some(t),
            domo::core::TimeRef::Var(v) => estimates.time_of(v),
        });
    let tracing = message_tracing::reconstruct_order(&trace, view);

    let domo_disp = average_displacement(&truth, &domo_order).unwrap_or(0.0);
    let mt_disp = average_displacement(&truth, &tracing.order).unwrap_or(0.0);
    println!("\nevent-order reconstruction over {} events:", truth.len());
    println!("  Domo          average displacement {domo_disp:.3}");
    println!("  MessageTracing average displacement {mt_disp:.3}");
}
