//! # Domo — passive per-packet delay tomography for wireless ad-hoc networks
//!
//! A full reproduction of *"Domo: Passive Per-Packet Delay Tomography in
//! Wireless Ad-hoc Networks"* (ICDCS 2014): the reconstruction
//! algorithms, the network substrate they run on, the two baselines they
//! are evaluated against, and the experiment harness that regenerates
//! every table and figure of the paper.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `domo-core` | the paper's contribution: constraints, windowed QP/SDP estimator, sub-graph bound LPs |
//! | [`net`] | `domo-net` | discrete-event wireless collection network (CSMA MAC, CTP-style routing, Algorithm 1 on-node) |
//! | [`sink`] | `domo-sink` | online sink service: wire codec, sharded streaming reconstruction, TCP ingest/query |
//! | [`cluster`] | `domo-cluster` | coordinator-free multi-sink clustering: tenant namespaces, seeded consistent-hash ring |
//! | [`store`] | `domo-store` | durable storage: segmented WAL, atomic checkpoints, time-indexed result log |
//! | [`query`] | `domo-query` | live query layer: subscription fan-out hub, log-bucketed delay sketches, time-series aggregation |
//! | [`obs`] | `domo-obs` | zero-dep metrics, spans, and structured events across the pipeline |
//! | [`baselines`] | `domo-baselines` | MNT and MessageTracing comparators |
//! | [`solver`] | `domo-solver` | from-scratch ADMM QP/LP/SDP solver |
//! | [`linalg`] | `domo-linalg` | dense/sparse kernels, Jacobi eigensolver |
//! | [`graph`] | `domo-graph` | constraint graph, BFS balls, balanced label propagation |
//! | [`experiments`] | `domo-experiments` | per-figure regeneration harness |
//! | [`util`] | `domo-util` | deterministic RNG, statistics, simulated time |
//!
//! # Quickstart
//!
//! ```
//! use domo::prelude::*;
//!
//! // 1. Simulate a collection network (or bring your own trace).
//! let trace = run_simulation(&NetworkConfig::small(16, 7));
//!
//! // 2. Reconstruct per-hop arrival times from sink-side data only.
//! let domo = Domo::from_trace(&trace);
//! let estimates = domo.estimate(&EstimatorConfig::default());
//!
//! // 3. Read back the decomposition of any packet's end-to-end delay.
//! let delays = domo.hop_delays(0, &estimates);
//! assert_eq!(delays.len(), domo.view().packet(0).path.len() - 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use domo_baselines as baselines;
pub use domo_cluster as cluster;
pub use domo_core as core;
pub use domo_experiments as experiments;
pub use domo_graph as graph;
pub use domo_linalg as linalg;
pub use domo_net as net;
pub use domo_obs as obs;
pub use domo_query as query;
pub use domo_sink as sink;
pub use domo_solver as solver;
pub use domo_store as store;
pub use domo_util as util;

/// The most common imports in one place.
pub mod prelude {
    pub use domo_core::{
        BoundMethod, Bounds, BoundsConfig, Domo, Estimates, EstimatorConfig, FifoMode, TraceView,
    };
    pub use domo_net::{run_simulation, NetworkConfig, NetworkTrace, NodeId, PacketId};
    pub use domo_util::rng::Xoshiro256pp;
    pub use domo_util::time::{SimDuration, SimTime};
}
